package workload

import (
	"fmt"

	"locality/internal/mapping"
	"locality/internal/procsim"
	"locality/internal/replay"
)

// ReplayConfig is the workload that feeds a recorded reference trace
// back into the simulator: each (thread, context) stream from the
// trace becomes that thread's program, and the trace's home table —
// recorded as owning *threads* — is projected through the active
// mapping. A trace captured on one machine therefore replays under
// any thread-to-processor mapping and any context count up to the
// recorded one, which is exactly what the replay-fitting pipeline
// sweeps to recover (s, Tr+Tc+Tf, d).
type ReplayConfig struct {
	// Trace is the decoded trace to replay.
	Trace *replay.Trace
	// Map assigns threads to processors. Nil replays under the
	// capture-time placement recorded in the trace header.
	Map *mapping.Mapping
	// Contexts is the hardware context count to replay with; 0 uses
	// the recorded count. Must not exceed the recorded count (streams
	// beyond it were never captured).
	Contexts int
	// Loop rewinds an exhausted stream to its start instead of
	// halting the thread, turning a finite capture into a steady-state
	// workload (the recorded streams are close to periodic, so the
	// wrap is a phase jump, not a behavior change).
	Loop bool
}

var _ Workload = ReplayConfig{}

// place returns the effective thread→processor assignment.
func (c ReplayConfig) place() []int {
	if c.Map != nil {
		return c.Map.Place
	}
	return c.Trace.Header.Place
}

// contexts returns the effective hardware context count.
func (c ReplayConfig) contexts() int {
	if c.Contexts == 0 {
		return c.Trace.Header.Contexts
	}
	return c.Contexts
}

// Validate checks the configuration.
func (c ReplayConfig) Validate() error {
	if c.Trace == nil {
		return fmt.Errorf("workload: nil trace")
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	nodes := c.Trace.Header.Nodes()
	if c.Map != nil {
		if err := c.Map.Validate(); err != nil {
			return err
		}
		if len(c.Map.Place) != nodes {
			return fmt.Errorf("workload: mapping covers %d threads, trace has %d", len(c.Map.Place), nodes)
		}
	}
	if c.Contexts < 0 || c.Contexts > c.Trace.Header.Contexts {
		return fmt.Errorf("workload: %d contexts requested, trace recorded %d", c.Contexts, c.Trace.Header.Contexts)
	}
	return nil
}

// HomeFunc implements Workload: a line lives on the node its recorded
// owner thread is mapped to. The home table is keyed by line address,
// so queries are masked to the trace's line size first. Lines absent
// from the table (impossible for a replayed capture, whose table
// covers every referenced line) default to thread 0's node.
func (c ReplayConfig) HomeFunc() func(addr uint64) int {
	place := c.place()
	owners := c.Trace.HomeMap()
	lineSize := uint64(c.Trace.Header.LineSize)
	return func(addr uint64) int {
		if t, ok := owners[addr-addr%lineSize]; ok {
			return place[t]
		}
		return place[0]
	}
}

// replayThread plays one recorded stream.
type replayThread struct {
	recs []replay.Rec
	loop bool
	pos  int
}

// Next implements procsim.Program.
func (r *replayThread) Next() procsim.Op {
	if r.pos >= len(r.recs) {
		if !r.loop || len(r.recs) == 0 {
			return procsim.Op{Kind: procsim.OpHalt}
		}
		r.pos = 0
	}
	rec := r.recs[r.pos]
	r.pos++
	return rec.Op()
}

// Programs implements Workload: Programs()[node][context] replays the
// stream of (thread-on-node, context).
func (c ReplayConfig) Programs() ([][]procsim.Program, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	place := c.place()
	nodes := c.Trace.Header.Nodes()
	p := c.contexts()
	threadOn := make([]int, nodes)
	for thread, node := range place {
		threadOn[node] = thread
	}
	out := make([][]procsim.Program, nodes)
	for node := 0; node < nodes; node++ {
		thread := threadOn[node]
		out[node] = make([]procsim.Program, p)
		for ctx := 0; ctx < p; ctx++ {
			out[node][ctx] = &replayThread{recs: c.Trace.Stream(thread, ctx), loop: c.Loop}
		}
	}
	return out, nil
}

// Records returns the total recorded operation count, a rough bound
// on how much simulated work the trace can drive without looping.
func (c ReplayConfig) Records() int64 { return c.Trace.Records() }
