package workload

import (
	"testing"

	"locality/internal/mapping"
	"locality/internal/procsim"
	"locality/internal/topology"
)

func baseConfig() RelaxationConfig {
	tor := topology.MustNew(4, 2)
	return RelaxationConfig{
		Graph:        tor,
		Map:          mapping.Identity(tor),
		Instances:    2,
		LineSize:     16,
		ReadCompute:  20,
		WriteCompute: 20,
	}
}

func TestValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []func(*RelaxationConfig){
		func(c *RelaxationConfig) { c.Graph = nil },
		func(c *RelaxationConfig) { c.Map = nil },
		func(c *RelaxationConfig) { c.Instances = 0 },
		func(c *RelaxationConfig) { c.LineSize = 0 },
		func(c *RelaxationConfig) { c.ReadCompute = -1 },
		func(c *RelaxationConfig) { c.Map = mapping.Identity(topology.MustNew(8, 2)) },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestStateAddrDisjointAndInvertible(t *testing.T) {
	cfg := baseConfig()
	seen := map[uint64]bool{}
	for inst := 0; inst < cfg.Instances; inst++ {
		for th := 0; th < cfg.Graph.Nodes(); th++ {
			addr := cfg.StateAddr(inst, th)
			if addr%uint64(cfg.LineSize) != 0 {
				t.Errorf("addr %#x not line aligned", addr)
			}
			if seen[addr] {
				t.Errorf("duplicate state address %#x", addr)
			}
			seen[addr] = true
			gi, gt := cfg.ThreadOf(addr)
			if gi != inst || gt != th {
				t.Errorf("ThreadOf(%#x) = (%d,%d), want (%d,%d)", addr, gi, gt, inst, th)
			}
		}
	}
}

func TestStateAddrNoCacheConflicts(t *testing.T) {
	// With T threads and I instances, line numbers run 0..T·I−1:
	// all distinct, so any direct-mapped cache with ≥ T·I lines holds
	// every word without conflicts.
	cfg := baseConfig()
	total := cfg.Instances * cfg.Graph.Nodes()
	lineNos := map[uint64]bool{}
	for inst := 0; inst < cfg.Instances; inst++ {
		for th := 0; th < cfg.Graph.Nodes(); th++ {
			lineNos[cfg.StateAddr(inst, th)/uint64(cfg.LineSize)] = true
		}
	}
	if len(lineNos) != total {
		t.Errorf("line numbers collide: %d distinct of %d", len(lineNos), total)
	}
}

func TestHomeFuncFollowsMapping(t *testing.T) {
	cfg := baseConfig()
	cfg.Map = mapping.Random(cfg.Graph, 3)
	home := cfg.HomeFunc()
	for th := 0; th < cfg.Graph.Nodes(); th++ {
		addr := cfg.StateAddr(1, th)
		if got, want := home(addr), cfg.Map.Place[th]; got != want {
			t.Errorf("home of thread %d's word = %d, want %d", th, got, want)
		}
	}
}

func TestThreadProgramShape(t *testing.T) {
	cfg := baseConfig()
	progs, err := cfg.Programs()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != cfg.Graph.Nodes() {
		t.Fatalf("program matrix has %d rows, want %d", len(progs), cfg.Graph.Nodes())
	}
	// Walk two full iterations of one thread's program and check the
	// operation pattern: (compute, read)×deg, compute, write.
	prog := progs[5][0]
	deg := len(cfg.Graph.Neighbors(5))
	for iter := 0; iter < 2; iter++ {
		for i := 0; i < deg; i++ {
			if op := prog.Next(); op.Kind != procsim.OpCompute || op.Cycles != cfg.ReadCompute {
				t.Fatalf("iter %d: expected read-compute, got %+v", iter, op)
			}
			if op := prog.Next(); op.Kind != procsim.OpRead {
				t.Fatalf("iter %d: expected read, got %+v", iter, op)
			}
		}
		if op := prog.Next(); op.Kind != procsim.OpCompute || op.Cycles != cfg.WriteCompute {
			t.Fatalf("iter %d: expected write-compute, got %+v", iter, op)
		}
		op := prog.Next()
		if op.Kind != procsim.OpWrite {
			t.Fatalf("iter %d: expected write, got %+v", iter, op)
		}
		// Identity mapping: node 5 runs thread 5 and writes its word.
		if op.Addr != cfg.StateAddr(0, 5) {
			t.Fatalf("iter %d: write addr %#x, want own word %#x", iter, op.Addr, cfg.StateAddr(0, 5))
		}
	}
}

func TestProgramsReadNeighborsOnly(t *testing.T) {
	cfg := baseConfig()
	cfg.Map = mapping.Random(cfg.Graph, 9)
	progs, err := cfg.Programs()
	if err != nil {
		t.Fatal(err)
	}
	// Find the thread on processor 3 (inverted mapping) and confirm
	// its reads are exactly its graph neighbors' words in instance 1.
	var thread int
	for th, pr := range cfg.Map.Place {
		if pr == 3 {
			thread = th
			break
		}
	}
	want := map[uint64]bool{}
	for _, nb := range cfg.Graph.Neighbors(thread) {
		want[cfg.StateAddr(1, nb)] = true
	}
	prog := progs[3][1]
	got := map[uint64]bool{}
	for i := 0; i < 2*len(want)+2; i++ {
		op := prog.Next()
		if op.Kind == procsim.OpRead {
			got[op.Addr] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("read %d distinct addresses, want %d", len(got), len(want))
	}
	for addr := range got {
		if !want[addr] {
			t.Errorf("read unexpected address %#x", addr)
		}
	}
}

func TestTransactionsPerIteration(t *testing.T) {
	cfg := baseConfig()
	if got := cfg.TransactionsPerIteration(); got != 5 {
		t.Errorf("TransactionsPerIteration = %d, want 5 (4 reads + 1 write)", got)
	}
}

func TestGrainEstimate(t *testing.T) {
	cfg := baseConfig()
	// (4·20 + 20 + 5·1)/5 = 21.
	if got := cfg.GrainEstimate(1); got != 21 {
		t.Errorf("GrainEstimate = %g, want 21", got)
	}
}

func TestInstancesAreDisjoint(t *testing.T) {
	cfg := baseConfig()
	progs, err := cfg.Programs()
	if err != nil {
		t.Fatal(err)
	}
	// Collect every address touched by instance 0 and instance 1
	// across all nodes; the sets must not intersect.
	touched := make([]map[uint64]bool, cfg.Instances)
	for inst := range touched {
		touched[inst] = map[uint64]bool{}
		for node := 0; node < cfg.Graph.Nodes(); node++ {
			prog := progs[node][inst]
			for i := 0; i < 12; i++ {
				op := prog.Next()
				if op.Kind == procsim.OpRead || op.Kind == procsim.OpWrite {
					touched[inst][op.Addr] = true
				}
			}
		}
	}
	for addr := range touched[0] {
		if touched[1][addr] {
			t.Errorf("address %#x shared across instances", addr)
		}
	}
}
