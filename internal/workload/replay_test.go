package workload

import (
	"testing"

	"locality/internal/mapping"
	"locality/internal/procsim"
	"locality/internal/replay"
	"locality/internal/topology"
)

// replayTestTrace builds a small hand-authored trace: 4 threads × 2
// contexts on a 2×2 machine, captured under placement [1, 2, 3, 0].
func replayTestTrace(t *testing.T) *replay.Trace {
	t.Helper()
	tr := &replay.Trace{
		Header: replay.Header{
			Radix: 2, Dims: 2, Contexts: 2, LineSize: 16,
			Warmup: 10, Window: 50,
			MappingName: "capture", Place: []int{1, 2, 3, 0},
		},
	}
	threads := tr.Header.Threads()
	tr.Threads = make([][]replay.Rec, threads)
	for i := 0; i < threads; i++ {
		tr.Threads[i] = []replay.Rec{
			{Kind: procsim.OpCompute, Arg: uint64(3 + i)},
			{Kind: procsim.OpRead, Arg: uint64(64 * (i + 1))},
			{Kind: procsim.OpWrite, Arg: uint64(64 * ((i + 1) % threads))},
		}
	}
	tr.Home = []replay.HomeEntry{
		{Addr: 64, Thread: 0},
		{Addr: 128, Thread: 1},
		{Addr: 192, Thread: 2},
		{Addr: 256, Thread: 3},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// drain pulls ops from a program until (and including) its halt.
func drain(t *testing.T, p procsim.Program, max int) []procsim.Op {
	t.Helper()
	var ops []procsim.Op
	for i := 0; i < max; i++ {
		op := p.Next()
		ops = append(ops, op)
		if op.Kind == procsim.OpHalt {
			return ops
		}
	}
	t.Fatalf("program did not halt within %d ops", max)
	return nil
}

// TestReplayProgramsRecordedPlacement replays under the capture-time
// placement: thread i's stream must come back on Place[i], converted
// op for op, followed by a halt.
func TestReplayProgramsRecordedPlacement(t *testing.T) {
	tr := replayTestTrace(t)
	w := ReplayConfig{Trace: tr}
	progs, err := w.Programs()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 4 || len(progs[0]) != 2 {
		t.Fatalf("got %d nodes × %d contexts, want 4 × 2", len(progs), len(progs[0]))
	}
	for thread, node := range tr.Header.Place {
		for ctx := 0; ctx < 2; ctx++ {
			ops := drain(t, progs[node][ctx], 10)
			recs := tr.Stream(thread, ctx)
			if len(ops) != len(recs)+1 {
				t.Fatalf("thread %d ctx %d on node %d: %d ops, want %d + halt", thread, ctx, node, len(ops), len(recs))
			}
			for i, rec := range recs {
				if ops[i] != rec.Op() {
					t.Errorf("thread %d ctx %d op %d = %+v, want %+v", thread, ctx, i, ops[i], rec.Op())
				}
			}
			if ops[len(ops)-1].Kind != procsim.OpHalt {
				t.Errorf("thread %d ctx %d: stream did not end in halt", thread, ctx)
			}
		}
	}
}

// TestReplayHomeFollowsMapping checks the home table is keyed by
// thread and projected through whichever mapping is active: under a
// new placement a line moves with its owning thread.
func TestReplayHomeFollowsMapping(t *testing.T) {
	tr := replayTestTrace(t)

	// Recorded placement: thread 1 sits on node 2, so addr 128 is
	// homed there.
	recorded := ReplayConfig{Trace: tr}.HomeFunc()
	if got := recorded(128); got != 2 {
		t.Errorf("recorded placement: home(128) = %d, want 2", got)
	}
	// Unknown address falls back to thread 0's node.
	if got := recorded(9999); got != 1 {
		t.Errorf("recorded placement: home(unknown) = %d, want thread 0's node 1", got)
	}

	remap := &mapping.Mapping{Name: "swap", Place: []int{3, 0, 1, 2}}
	remapped := ReplayConfig{Trace: tr, Map: remap}.HomeFunc()
	if got := remapped(128); got != 0 {
		t.Errorf("remapped: home(128) = %d, want 0 (thread 1 moved)", got)
	}
	if got := remapped(64); got != 3 {
		t.Errorf("remapped: home(64) = %d, want 3 (thread 0 moved)", got)
	}
}

// TestReplayLoopAndContextSubset: Loop rewinds exhausted streams, and
// Contexts < recorded replays only the first streams per thread.
func TestReplayLoopAndContextSubset(t *testing.T) {
	tr := replayTestTrace(t)
	w := ReplayConfig{Trace: tr, Contexts: 1, Loop: true}
	progs, err := w.Programs()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs[0]) != 1 {
		t.Fatalf("got %d contexts, want 1", len(progs[0]))
	}
	// Thread 3 is on node 0; its stream is 3 records long. Pulling 7
	// ops must wrap twice with no halt.
	p := progs[0][0]
	recs := tr.Stream(3, 0)
	for i := 0; i < 7; i++ {
		op := p.Next()
		want := recs[i%len(recs)].Op()
		if op != want {
			t.Fatalf("looped op %d = %+v, want %+v", i, op, want)
		}
	}
}

// TestReplayValidate exercises the rejection paths.
func TestReplayValidate(t *testing.T) {
	tr := replayTestTrace(t)
	cases := []struct {
		name string
		cfg  ReplayConfig
	}{
		{"nil trace", ReplayConfig{}},
		{"contexts beyond recorded", ReplayConfig{Trace: tr, Contexts: 3}},
		{"negative contexts", ReplayConfig{Trace: tr, Contexts: -1}},
		{"mapping size mismatch", ReplayConfig{Trace: tr, Map: &mapping.Mapping{Name: "short", Place: []int{0, 1}}}},
		{"invalid mapping", ReplayConfig{Trace: tr, Map: &mapping.Mapping{Name: "dup", Place: []int{0, 0, 1, 2}}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
		if _, err := tc.cfg.Programs(); err == nil {
			t.Errorf("%s: Programs accepted", tc.name)
		}
	}
	if err := (ReplayConfig{Trace: tr, Map: mapping.Identity(topology.MustNew(2, 2)), Contexts: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestReplayEmptyStreamHalts: a looping empty stream must halt, not
// spin forever.
func TestReplayEmptyStreamHalts(t *testing.T) {
	p := &replayThread{loop: true}
	if op := p.Next(); op.Kind != procsim.OpHalt {
		t.Errorf("empty looping stream returned %+v, want halt", op)
	}
}
