package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestZeroTracerIsSafe(t *testing.T) {
	var tr Tracer
	tr.Emit(Event{Kind: KindMsgSend})
	if tr.Enabled() {
		t.Error("zero tracer should be disabled")
	}
	if got := tr.Events(); got != nil {
		t.Errorf("zero tracer retained events: %v", got)
	}
	var nilT *Tracer
	nilT.Emit(Event{Kind: KindMsgSend}) // must not panic
	if nilT.Enabled() || nilT.Count(KindMsgSend) != 0 || nilT.Dropped() != 0 {
		t.Error("nil tracer should report nothing")
	}
}

func TestNewValidatesCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestEmitAndEvents(t *testing.T) {
	tr := New(10)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Cycle: int64(i), Kind: KindTxnStart, Node: i})
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("retained %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != int64(i) || e.Node != i {
			t.Errorf("event %d = %+v out of order", i, e)
		}
	}
	if tr.Count(KindTxnStart) != 5 {
		t.Errorf("count = %d, want 5", tr.Count(KindTxnStart))
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: int64(i), Kind: KindMsgSend})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != int64(6+i) {
			t.Errorf("event %d cycle = %d, want %d (newest four, in order)", i, e.Cycle, 6+i)
		}
	}
	if tr.Count(KindMsgSend) != 10 {
		t.Errorf("count = %d, want 10 despite wrapping", tr.Count(KindMsgSend))
	}
}

func TestKindFiltering(t *testing.T) {
	tr := New(10)
	tr.SetKinds(KindTxnComplete)
	tr.Emit(Event{Kind: KindMsgSend})
	tr.Emit(Event{Kind: KindTxnComplete})
	tr.Emit(Event{Kind: KindCtxSwitch})
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != KindTxnComplete {
		t.Errorf("filtered events = %v", evs)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	// Counts include filtered kinds.
	if tr.Count(KindMsgSend) != 1 {
		t.Errorf("send count = %d, want 1", tr.Count(KindMsgSend))
	}
}

func TestDumpAndFilter(t *testing.T) {
	tr := New(10)
	tr.Emit(Event{Cycle: 7, Kind: KindEvict, Node: 3, Addr: 0x40})
	tr.Emit(Event{Cycle: 9, Kind: KindMsgDeliver, Node: 1, Peer: 3})
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "evict") || !strings.Contains(out, "msg-deliver") {
		t.Errorf("dump missing events:\n%s", out)
	}
	only := tr.Filter(func(e Event) bool { return e.Node == 3 })
	if len(only) != 1 || only[0].Kind != KindEvict {
		t.Errorf("filter result = %v", only)
	}
}

func TestKindStrings(t *testing.T) {
	if KindMsgSend.String() != "msg-send" || KindEvict.String() != "evict" {
		t.Error("kind strings wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind string wrong")
	}
}

// TestWrapFilterSetKindsRoundTrip drives the ring through the
// fill boundary with kind filtering active, checking that dropped
// events never advance the write cursor and that Filter sees the
// retained window in order afterwards.
func TestWrapFilterSetKindsRoundTrip(t *testing.T) {
	tr := New(4)
	tr.SetKinds(KindMsgSend, KindTxnComplete)
	// Interleave retained and filtered kinds across the boundary: the
	// filtered emits must not consume ring slots.
	for i := 0; i < 7; i++ {
		tr.Emit(Event{Cycle: int64(10 + i), Kind: KindMsgSend})
		tr.Emit(Event{Cycle: int64(10 + i), Kind: KindCtxSwitch}) // filtered
	}
	tr.Emit(Event{Cycle: 20, Kind: KindTxnComplete})

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want capacity 4", len(evs))
	}
	wantCycles := []int64{14, 15, 16, 20}
	for i, e := range evs {
		if e.Cycle != wantCycles[i] {
			t.Errorf("event %d cycle = %d, want %d (newest retained, in order)", i, e.Cycle, wantCycles[i])
		}
	}
	if tr.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7 filtered ctx-switches", tr.Dropped())
	}
	sends := tr.Filter(func(e Event) bool { return e.Kind == KindMsgSend })
	if len(sends) != 3 || sends[0].Cycle != 14 || sends[2].Cycle != 16 {
		t.Errorf("Filter(sends) = %v, want cycles 14..16", sends)
	}
	if tr.Count(KindMsgSend) != 7 || tr.Count(KindCtxSwitch) != 7 {
		t.Errorf("counts = %d sends, %d switches, want 7 each (counts include filtered and overwritten)",
			tr.Count(KindMsgSend), tr.Count(KindCtxSwitch))
	}
}

func TestExactCapacityBoundary(t *testing.T) {
	tr := New(3)
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Cycle: int64(i), Kind: KindMsgSend})
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Cycle != 0 || evs[2].Cycle != 2 {
		t.Errorf("exactly-full buffer events = %v", evs)
	}
	tr.Emit(Event{Cycle: 3, Kind: KindMsgSend})
	evs = tr.Events()
	if len(evs) != 3 || evs[0].Cycle != 1 || evs[2].Cycle != 3 {
		t.Errorf("one-past-full buffer events = %v", evs)
	}
}
