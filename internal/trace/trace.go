// Package trace provides lightweight structured event tracing for the
// simulator: a fixed-capacity ring buffer of typed events with
// per-kind filtering, counters, and text export. Tracing is designed
// to be cheap enough to leave compiled in: a disabled Tracer is a
// single branch per event.
package trace

import (
	"fmt"
	"io"
)

// Kind classifies events.
type Kind uint8

const (
	// KindMsgSend is a protocol message handed to the network.
	KindMsgSend Kind = iota
	// KindMsgDeliver is a message arriving at its destination.
	KindMsgDeliver
	// KindTxnStart is a coherence transaction issuing.
	KindTxnStart
	// KindTxnComplete is a coherence transaction completing.
	KindTxnComplete
	// KindCtxSwitch is a processor context switch.
	KindCtxSwitch
	// KindEvict is a cache line eviction.
	KindEvict
	// KindKernelSkip is a quiescent span the event kernel advanced
	// over in bulk: Cycle is the first skipped cycle, Info the span
	// length, Node/Peer are -1 (machine-wide).
	KindKernelSkip
	// KindShardWindow is a parallel window opened by the sharded
	// kernel: Cycle is the window's first cycle, Info its length, Peer
	// the shard count, Node -1 (machine-wide).
	KindShardWindow
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{"msg-send", "msg-deliver", "txn-start", "txn-complete", "ctx-switch", "evict", "kernel-skip", "shard-window"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one traced occurrence. The integer fields are
// interpretation-dependent per kind (documented on the Emit helpers).
type Event struct {
	Cycle int64
	Kind  Kind
	Node  int
	Peer  int
	Addr  uint64
	Info  int64
}

// String renders one event compactly.
func (e Event) String() string {
	return fmt.Sprintf("[%8d] %-12s node=%-3d peer=%-3d addr=%#x info=%d",
		e.Cycle, e.Kind, e.Node, e.Peer, e.Addr, e.Info)
}

// Tracer collects events into a ring buffer. The zero value is a
// disabled tracer that drops everything; use New for an enabled one.
type Tracer struct {
	enabled  bool
	mask     [numKinds]bool
	buf      []Event
	next     int
	wrapped  bool
	counts   [numKinds]int64
	dropped  int64
	capacity int
}

// New returns a tracer holding the most recent capacity events, with
// every kind enabled.
func New(capacity int) *Tracer {
	if capacity < 1 {
		panic("trace: capacity must be positive")
	}
	t := &Tracer{enabled: true, buf: make([]Event, 0, capacity), capacity: capacity}
	for i := range t.mask {
		t.mask[i] = true
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// SetKinds restricts recording to the given kinds (all others are
// counted as dropped).
func (t *Tracer) SetKinds(kinds ...Kind) {
	for i := range t.mask {
		t.mask[i] = false
	}
	for _, k := range kinds {
		t.mask[k] = true
	}
}

// Emit records one event. Safe to call on a nil or zero Tracer.
func (t *Tracer) Emit(e Event) {
	if t == nil || !t.enabled {
		return
	}
	t.counts[e.Kind]++
	if !t.mask[e.Kind] {
		t.dropped++
		return
	}
	if len(t.buf) < t.capacity {
		t.buf = append(t.buf, e)
		// len%capacity is the next write slot and already wraps to 0
		// when the buffer just filled.
		t.next = len(t.buf) % t.capacity
		return
	}
	t.buf[t.next] = e
	t.next = (t.next + 1) % t.capacity
	t.wrapped = true
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, len(t.buf))
		copy(out, t.buf)
		return out
	}
	out := make([]Event, 0, t.capacity)
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Count returns how many events of kind k were emitted (including
// filtered ones).
func (t *Tracer) Count(k Kind) int64 {
	if t == nil {
		return 0
	}
	return t.counts[k]
}

// Dropped returns how many events were filtered out by the kind mask.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Dump writes the retained events as text, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Filter returns the retained events matching the predicate.
func (t *Tracer) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range t.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}
