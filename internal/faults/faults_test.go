package faults

import (
	"errors"
	"testing"
)

func TestParseSpec(t *testing.T) {
	tests := []struct {
		in   string
		want Spec
		err  bool
	}{
		{"", Spec{}, false},
		{"seed=7", Spec{Seed: 7}, false},
		{"loss=0.01", Spec{LossRate: 0.01}, false},
		{"seed=3,loss=0.5,mttf=50000,stall=20..200",
			Spec{Seed: 3, LossRate: 0.5, LinkMTTF: 50000, StallMin: 20, StallMax: 200}, false},
		{"stall=40", Spec{StallMin: 40, StallMax: 40}, false},
		{" seed = 1 , loss = 0.1 ", Spec{Seed: 1, LossRate: 0.1}, false},
		{"bogus=1", Spec{}, true},
		{"seed", Spec{}, true},
		{"loss=2", Spec{}, true},     // out of [0,1]
		{"loss=-0.1", Spec{}, true},  // out of [0,1]
		{"mttf=-5", Spec{}, true},    // negative
		{"stall=9..3", Spec{}, true}, // inverted bounds
		{"seed=abc", Spec{}, true},
		{"loss=NaN", Spec{}, true},
	}
	for _, tc := range tests {
		got, err := ParseSpec(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseSpec(%q) = %+v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Seed: 42},
		{Seed: -3, LossRate: 0.125},
		{LinkMTTF: 1e5, StallMin: 10, StallMax: 1000},
		{Seed: 9, LossRate: 1, LinkMTTF: 0.5, StallMin: 1, StallMax: 1},
	}
	for _, s := range specs {
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Errorf("round trip of %+v (%q): %v", s, s.String(), err)
			continue
		}
		if back != s {
			t.Errorf("round trip of %q: got %+v, want %+v", s.String(), back, s)
		}
	}
}

func TestSpecEnabled(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Error("zero spec should be disabled")
	}
	if (Spec{Seed: 5}).Enabled() {
		t.Error("seed alone should not enable faults")
	}
	if !(Spec{LossRate: 0.1}).Enabled() || !(Spec{LinkMTTF: 100}).Enabled() {
		t.Error("loss or mttf should enable faults")
	}
}

func TestLinkFaultsDeterministic(t *testing.T) {
	spec := Spec{Seed: 11, LinkMTTF: 500, StallMin: 5, StallMax: 50}
	a := NewLinkFaults(spec, 16)
	b := NewLinkFaults(spec, 16)
	downs := 0
	for now := int64(0); now < 20000; now++ {
		for ch := 0; ch < 16; ch++ {
			da, db := a.Down(ch, now), b.Down(ch, now)
			if da != db {
				t.Fatalf("schedules diverge at ch=%d now=%d", ch, now)
			}
			if da {
				downs++
			}
		}
	}
	if downs == 0 {
		t.Error("no faults drawn in 20000 cycles at mttf=500")
	}
	if a.DownCycles() != int64(downs) {
		t.Errorf("DownCycles = %d, counted %d", a.DownCycles(), downs)
	}
	// A different seed must give a different schedule.
	c := NewLinkFaults(Spec{Seed: 12, LinkMTTF: 500, StallMin: 5, StallMax: 50}, 16)
	d := NewLinkFaults(spec, 16)
	same := true
	for now := int64(0); now < 20000 && same; now++ {
		for ch := 0; ch < 16; ch++ {
			if c.Down(ch, now) != d.Down(ch, now) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules over 20000 cycles")
	}
}

func TestLinkFaultsDurationBounds(t *testing.T) {
	spec := Spec{Seed: 1, LinkMTTF: 100, StallMin: 3, StallMax: 7}
	lf := NewLinkFaults(spec, 1)
	// Walk the schedule and measure each contiguous down interval.
	run := int64(0)
	for now := int64(0); now < 100000; now++ {
		if lf.Down(0, now) {
			run++
			continue
		}
		if run > 0 {
			if run < 3 || run > 7 {
				t.Fatalf("fault duration %d outside [3,7]", run)
			}
			run = 0
		}
	}
}

func TestLinkFaultsDisabled(t *testing.T) {
	if NewLinkFaults(Spec{}, 8) != nil {
		t.Error("zero spec should yield nil link faults")
	}
	if NewLinkFaults(Spec{LossRate: 0.5}, 8) != nil {
		t.Error("loss-only spec should yield nil link faults")
	}
}

func TestCoinDeterministicAndCalibrated(t *testing.T) {
	a := NewCoin(7, 1, 0.25)
	b := NewCoin(7, 1, 0.25)
	other := NewCoin(7, 2, 0.25)
	for i := 0; i < 100000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed coins diverged")
		}
		if a.Hits() != b.Hits() {
			t.Fatal("hit counts diverged")
		}
		_ = other.Next()
	}
	if other.Hits() == a.Hits() {
		t.Error("independent streams produced identical hit counts (suspicious)")
	}
	frac := float64(a.Hits()) / 100000
	if frac < 0.24 || frac > 0.26 {
		t.Errorf("coin frequency %v far from p=0.25", frac)
	}
	if NewCoin(1, 0, 0) != nil {
		t.Error("p=0 should yield nil coin")
	}
}

func TestStallReport(t *testing.T) {
	var err error = &StallReport{
		Component:  "network",
		Cycle:      1234,
		StalledFor: 500,
		Detail:     "worm 3→9 stuck at router 5",
		Snapshot:   "router 5: in[0]=4 flits",
	}
	if !errors.Is(err, ErrStalled) {
		t.Error("StallReport must wrap ErrStalled")
	}
	var rep *StallReport
	if !errors.As(err, &rep) || rep.Snapshot == "" {
		t.Error("StallReport must be recoverable with its snapshot")
	}
	if msg := err.Error(); msg == "" {
		t.Error("empty error message")
	}
}

func TestWatchdogInterval(t *testing.T) {
	if (Watchdog{}).Enabled() {
		t.Error("zero watchdog should be disabled")
	}
	w := Watchdog{StallCycles: 1000}
	if !w.Enabled() || w.Interval() != 250 {
		t.Errorf("interval = %d, want 250", w.Interval())
	}
	w = Watchdog{StallCycles: 2, CheckEvery: 7}
	if w.Interval() != 7 {
		t.Errorf("explicit interval = %d, want 7", w.Interval())
	}
	if (Watchdog{StallCycles: 1}).Interval() != 1 {
		t.Error("interval floor of 1 violated")
	}
}
