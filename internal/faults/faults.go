// Package faults provides deterministic fault injection for the
// full-system simulator: seeded schedules of transient link faults
// (a physical channel blocks for a drawn duration), protocol-message
// loss, and the typed errors the graceful-degradation watchdogs raise
// when a component stops making forward progress.
//
// Every schedule is a pure function of a seed: a link's fault
// intervals depend only on (seed, channel), and the message-loss coin
// is a seeded stream, so any faulty run is exactly reproducible from
// its configuration. With a zero Spec (or a nil model) every hook in
// the simulator is disabled and behavior is identical to a fault-free
// build.
package faults

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Spec describes one fault-injection configuration. The zero value
// injects nothing.
type Spec struct {
	// Seed selects the deterministic fault schedule. Runs with equal
	// Spec and simulator configuration produce identical results.
	Seed int64
	// LossRate is the probability that each fabric protocol message is
	// dropped in flight, in [0, 1].
	LossRate float64
	// LinkMTTF is the mean number of network cycles between transient
	// faults on each directional channel (mean time to failure). Zero
	// disables link faults.
	LinkMTTF float64
	// StallMin and StallMax bound the duration of one link fault in
	// network cycles (drawn uniformly). Zero values take the defaults
	// (16 and 256) when link faults are enabled.
	StallMin, StallMax int64
}

// Default fault-duration bounds (N-cycles) when a Spec enables link
// faults without setting them.
const (
	DefaultStallMin = 16
	DefaultStallMax = 256
)

// Enabled reports whether the spec injects any faults at all.
func (s Spec) Enabled() bool { return s.LossRate > 0 || s.LinkMTTF > 0 }

// Validate checks the spec's ranges.
func (s Spec) Validate() error {
	if s.LossRate < 0 || s.LossRate > 1 || math.IsNaN(s.LossRate) {
		return fmt.Errorf("faults: loss rate %v outside [0,1]", s.LossRate)
	}
	if s.LinkMTTF < 0 || math.IsNaN(s.LinkMTTF) || math.IsInf(s.LinkMTTF, 0) {
		return fmt.Errorf("faults: link MTTF %v, must be finite and ≥ 0", s.LinkMTTF)
	}
	if s.StallMin < 0 || s.StallMax < 0 {
		return fmt.Errorf("faults: negative stall bound %d..%d", s.StallMin, s.StallMax)
	}
	if s.StallMax > 0 && s.StallMin > s.StallMax {
		return fmt.Errorf("faults: stall bounds %d..%d inverted", s.StallMin, s.StallMax)
	}
	return nil
}

// stallBounds returns the effective fault-duration bounds.
func (s Spec) stallBounds() (lo, hi int64) {
	lo, hi = s.StallMin, s.StallMax
	if lo == 0 {
		lo = DefaultStallMin
	}
	if hi == 0 {
		hi = DefaultStallMax
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// String renders the spec in the canonical form accepted by ParseSpec.
// The zero spec renders as the empty string.
func (s Spec) String() string {
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	if s.LossRate != 0 {
		parts = append(parts, "loss="+strconv.FormatFloat(s.LossRate, 'g', -1, 64))
	}
	if s.LinkMTTF != 0 {
		parts = append(parts, "mttf="+strconv.FormatFloat(s.LinkMTTF, 'g', -1, 64))
	}
	if s.StallMin != 0 || s.StallMax != 0 {
		parts = append(parts, fmt.Sprintf("stall=%d..%d", s.StallMin, s.StallMax))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a textual fault specification: comma-separated
// key=value pairs with keys
//
//	seed=<int>        schedule seed
//	loss=<float>      per-message drop probability in [0,1]
//	mttf=<float>      mean N-cycles between faults per channel
//	stall=<lo>..<hi>  fault duration bounds (or a single value)
//
// The empty string yields the zero (disabled) spec. ParseSpec never
// panics; malformed input returns an error.
func ParseSpec(text string) (Spec, error) {
	var s Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, field := range strings.Split(text, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: %q is not key=value", field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "loss":
			s.LossRate, err = strconv.ParseFloat(val, 64)
		case "mttf":
			s.LinkMTTF, err = strconv.ParseFloat(val, 64)
		case "stall":
			lo, hi, found := strings.Cut(val, "..")
			s.StallMin, err = strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
			if err == nil {
				if found {
					s.StallMax, err = strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
				} else {
					s.StallMax = s.StallMin
				}
			}
		default:
			return Spec{}, fmt.Errorf("faults: unknown key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("faults: bad value in %q: %v", field, err)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// rng is a splitmix64 generator: tiny, fast, and with the property
// that any 64-bit seed yields an independent-looking stream, so each
// channel can own a stream derived from (seed, channel).
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// int63n returns a uniform draw in [0, n).
func (r *rng) int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// mix derives a stream seed from the schedule seed and a stream index.
func mix(seed int64, stream uint64) uint64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + stream*0xd1342543de82ef95 + 0x2545f4914f6cdd1d
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	return z ^ (z >> 33)
}

// LinkFaults is a deterministic per-channel renewal process of
// transient link faults: on each channel, fault intervals start after
// exponentially distributed gaps (mean LinkMTTF) and last a uniform
// duration in [StallMin, StallMax]. The schedule for a channel is a
// pure function of (Seed, channel); queries must be monotone in time
// per channel, which the synchronous network simulator guarantees.
type LinkFaults struct {
	mttf     float64
	lo, hi   int64
	seed     int64
	links    []linkState
	downCnt  int64
	faultCnt int64
}

type linkState struct {
	r          rng
	start, end int64 // current/next fault interval [start, end)
	init       bool
}

// NewLinkFaults builds the link-fault schedule for a fabric with the
// given number of directional channels. It returns nil when the spec
// does not enable link faults.
func NewLinkFaults(spec Spec, channels int) *LinkFaults {
	if spec.LinkMTTF <= 0 || channels <= 0 {
		return nil
	}
	lo, hi := spec.stallBounds()
	return &LinkFaults{
		mttf:  spec.LinkMTTF,
		lo:    lo,
		hi:    hi,
		seed:  spec.Seed,
		links: make([]linkState, channels),
	}
}

// gap draws an exponential inter-fault gap (≥ 1 cycle).
func (lf *LinkFaults) gap(r *rng) int64 {
	u := r.float64()
	g := int64(-lf.mttf * math.Log(1-u))
	if g < 1 {
		g = 1
	}
	return g
}

// dur draws a uniform fault duration.
func (lf *LinkFaults) dur(r *rng) int64 {
	return lf.lo + r.int63n(lf.hi-lf.lo+1)
}

// state lazily initializes and returns a channel's schedule state.
func (lf *LinkFaults) state(channel int) *linkState {
	st := &lf.links[channel]
	if !st.init {
		st.init = true
		st.r = rng{state: mix(lf.seed, uint64(channel))}
		st.start = lf.gap(&st.r)
		st.end = st.start + lf.dur(&st.r)
	}
	return st
}

// renew advances a channel past its current fault interval.
func (lf *LinkFaults) renew(st *linkState) {
	lf.faultCnt++
	st.start = st.end + lf.gap(&st.r)
	st.end = st.start + lf.dur(&st.r)
}

// Down reports whether the channel is faulted at the given cycle.
func (lf *LinkFaults) Down(channel int, now int64) bool {
	st := lf.state(channel)
	for now >= st.end {
		lf.renew(st)
	}
	if now >= st.start {
		lf.downCnt++
		return true
	}
	return false
}

// CountDown returns how many cycles in [from, to) the channel is down,
// with side effects — interval renewals, the faulted-interval count,
// and the down-cycle count — exactly matching a Down query at every
// cycle of the span in order. It exists so the event-driven kernel can
// skip over quiescent spans without perturbing fault schedules or
// their accounting; interleaving CountDown with Down is safe as long
// as the per-channel time monotonicity contract is kept.
func (lf *LinkFaults) CountDown(channel int, from, to int64) int64 {
	if from >= to {
		return 0
	}
	st := lf.state(channel)
	var down int64
	for t := from; t < to; {
		for t >= st.end {
			lf.renew(st)
		}
		if st.start >= to {
			// The next fault begins after the span: every remaining
			// cycle is up and triggers no renewal.
			break
		}
		if t < st.start {
			t = st.start
		}
		upper := st.end
		if upper > to {
			upper = to
		}
		down += upper - t
		t = upper
	}
	lf.downCnt += down
	return down
}

// DownCycles returns the total channel-cycles reported faulted so far.
func (lf *LinkFaults) DownCycles() int64 { return lf.downCnt }

// FaultCount returns the number of fault intervals entered so far
// across all channels (each renewal of a channel's schedule counts
// one interval).
func (lf *LinkFaults) FaultCount() int64 { return lf.faultCnt }

// Coin is a deterministic Bernoulli stream used for per-message drop
// decisions. Successive Next calls form a reproducible sequence for a
// given (seed, stream) pair.
type Coin struct {
	r     rng
	p     float64
	heads int64
	total int64
}

// NewCoin builds a coin with probability p derived from the seed and a
// caller-chosen stream index (so independent consumers draw from
// independent streams). It returns nil when p ≤ 0.
func NewCoin(seed int64, stream uint64, p float64) *Coin {
	if p <= 0 {
		return nil
	}
	if p > 1 {
		p = 1
	}
	return &Coin{r: rng{state: mix(seed, 0xc01c01+stream)}, p: p}
}

// Next draws the next decision.
func (c *Coin) Next() bool {
	c.total++
	if c.r.float64() < c.p {
		c.heads++
		return true
	}
	return false
}

// Hits returns how many Next calls returned true.
func (c *Coin) Hits() int64 { return c.heads }

// ErrStalled is the sentinel error wrapped by every StallReport, so
// callers can detect watchdog aborts with errors.Is.
var ErrStalled = errors.New("no forward progress")

// StallReport is the typed error a watchdog raises when a simulator
// component makes no forward progress for longer than its bound. It
// carries a structured diagnostic snapshot instead of letting the
// simulation spin forever.
type StallReport struct {
	// Component names the stalled subsystem ("network", "protocol").
	Component string
	// Cycle is the simulation time at detection (the component's own
	// clock domain).
	Cycle int64
	// StalledFor is how many cycles passed without progress.
	StalledFor int64
	// Detail is a one-line description of the stuck entity.
	Detail string
	// Snapshot is the multi-line diagnostic state dump (VC occupancy,
	// directory state, …).
	Snapshot string
	// Checkpoint is the path of the emergency machine checkpoint written
	// at detection, when checkpointing is configured; empty otherwise.
	// Restoring it reproduces the stall from just before the hang.
	Checkpoint string
}

// Error implements the error interface.
func (r *StallReport) Error() string {
	return fmt.Sprintf("faults: %s stalled at cycle %d (no progress for %d cycles): %s",
		r.Component, r.Cycle, r.StalledFor, r.Detail)
}

// Unwrap makes errors.Is(err, ErrStalled) true.
func (r *StallReport) Unwrap() error { return ErrStalled }

// Watchdog configures the graceful-degradation watchdogs: how long a
// component may go without forward progress before the simulation
// aborts with a StallReport. The zero value disables the watchdogs.
type Watchdog struct {
	// StallCycles is the progress bound in processor cycles (0 = off).
	StallCycles int64
	// CheckEvery is the polling interval in processor cycles; zero
	// defaults to StallCycles/4 (at least 1).
	CheckEvery int64
}

// Enabled reports whether the watchdog is active.
func (w Watchdog) Enabled() bool { return w.StallCycles > 0 }

// Interval returns the effective polling interval.
func (w Watchdog) Interval() int64 {
	if w.CheckEvery > 0 {
		return w.CheckEvery
	}
	iv := w.StallCycles / 4
	if iv < 1 {
		iv = 1
	}
	return iv
}
