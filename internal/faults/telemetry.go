package faults

import "locality/internal/telemetry"

// PublishTelemetry registers the fault model's lifetime accounting as
// pull-based gauges: no per-cycle cost, the counters are read only
// when the registry is sampled or dumped. Safe on a nil receiver (a
// fault-free machine) and a nil registry.
func (lf *LinkFaults) PublishTelemetry(reg *telemetry.Registry) {
	if lf == nil || reg == nil {
		return
	}
	reg.GaugeFunc("faults/link_down_cycles", func() float64 { return float64(lf.DownCycles()) })
	reg.GaugeFunc("faults/link_fault_intervals", func() float64 { return float64(lf.FaultCount()) })
}
