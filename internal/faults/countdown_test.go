package faults

import "testing"

func linkSpec(seed int64) Spec {
	return Spec{Seed: seed, LinkMTTF: 300, StallMin: 4, StallMax: 40}
}

// TestCountDownMatchesPerCycleDown verifies the bulk query is
// observationally identical to per-cycle Down: same down count over
// any chunking of the timeline, same renewal count, and — because the
// schedules are stateful renewal processes — identical behavior on
// queries issued after the compared span.
func TestCountDownMatchesPerCycleDown(t *testing.T) {
	const channels, horizon = 6, 20000
	chunkings := [][]int64{
		{1},                  // degenerate: bulk in single-cycle steps
		{horizon},            // one giant span
		{7, 1, 191, 3, 1024}, // ragged mix, repeated
	}
	for seed := int64(1); seed <= 3; seed++ {
		for ci, chunks := range chunkings {
			ref := NewLinkFaults(linkSpec(seed), channels)
			bulk := NewLinkFaults(linkSpec(seed), channels)
			for ch := 0; ch < channels; ch++ {
				var refDown int64
				for now := int64(0); now < horizon; now++ {
					if ref.Down(ch, now) {
						refDown++
					}
				}
				var bulkDown int64
				pos, ki := int64(0), 0
				for pos < horizon {
					n := chunks[ki%len(chunks)]
					ki++
					if pos+n > horizon {
						n = horizon - pos
					}
					bulkDown += bulk.CountDown(ch, pos, pos+n)
					pos += n
				}
				if refDown != bulkDown {
					t.Errorf("seed %d chunking %d channel %d: down %d per-cycle vs %d bulk",
						seed, ci, ch, refDown, bulkDown)
				}
			}
			if ref.DownCycles() != bulk.DownCycles() {
				t.Errorf("seed %d chunking %d: DownCycles %d vs %d", seed, ci, ref.DownCycles(), bulk.DownCycles())
			}
			if ref.faultCnt != bulk.faultCnt {
				t.Errorf("seed %d chunking %d: renewals %d vs %d", seed, ci, ref.faultCnt, bulk.faultCnt)
			}
			// Post-span state: later per-cycle queries must agree.
			for now := int64(horizon); now < horizon+500; now++ {
				for ch := 0; ch < channels; ch++ {
					if ref.Down(ch, now) != bulk.Down(ch, now) {
						t.Fatalf("seed %d chunking %d: schedules diverge at cycle %d channel %d", seed, ci, now, ch)
					}
				}
			}
		}
	}
}

// TestCountDownInterleavedWithDown mixes the two query styles on one
// model against a pure per-cycle reference.
func TestCountDownInterleavedWithDown(t *testing.T) {
	const channels, horizon = 3, 5000
	ref := NewLinkFaults(linkSpec(9), channels)
	mix := NewLinkFaults(linkSpec(9), channels)
	for ch := 0; ch < channels; ch++ {
		var refDown, mixDown int64
		for now := int64(0); now < horizon; now++ {
			if ref.Down(ch, now) {
				refDown++
			}
		}
		for now := int64(0); now < horizon; {
			if now%3 == 0 { // single-cycle query
				if mix.Down(ch, now) {
					mixDown++
				}
				now++
				continue
			}
			span := int64(100 + now%77)
			if now+span > horizon {
				span = horizon - now
			}
			mixDown += mix.CountDown(ch, now, now+span)
			now += span
		}
		if refDown != mixDown {
			t.Errorf("channel %d: down %d per-cycle vs %d interleaved", ch, refDown, mixDown)
		}
	}
}

func TestCountDownEmptySpan(t *testing.T) {
	lf := NewLinkFaults(linkSpec(1), 1)
	if got := lf.CountDown(0, 10, 10); got != 0 {
		t.Errorf("empty span counted %d", got)
	}
	if got := lf.CountDown(0, 10, 5); got != 0 {
		t.Errorf("inverted span counted %d", got)
	}
	if lf.DownCycles() != 0 {
		t.Errorf("empty spans accrued %d down cycles", lf.DownCycles())
	}
}
