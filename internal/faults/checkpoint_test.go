package faults

import (
	"reflect"
	"testing"
)

// TestLinkFaultsRestoreMatchesUnbrokenRun: snapshot a link-fault
// schedule mid-run, restore it into a fresh schedule, and the restored
// copy must produce the remaining fault sequence cycle for cycle —
// regardless of how the pre-snapshot span was chunked, and whether the
// continuation is queried per-cycle or in bulk.
func TestLinkFaultsRestoreMatchesUnbrokenRun(t *testing.T) {
	const channels, mid, horizon = 6, 7321, 20000
	chunkings := [][]int64{
		{1},
		{mid},
		{7, 1, 191, 3, 1024},
	}
	for seed := int64(1); seed <= 3; seed++ {
		for ci, chunks := range chunkings {
			ref := NewLinkFaults(linkSpec(seed), channels)
			broken := NewLinkFaults(linkSpec(seed), channels)
			// Drive both to mid; the broken copy takes the ragged path.
			for ch := 0; ch < channels; ch++ {
				ref.CountDown(ch, 0, mid)
				pos, ki := int64(0), 0
				for pos < mid {
					n := chunks[ki%len(chunks)]
					ki++
					if pos+n > mid {
						n = mid - pos
					}
					broken.CountDown(ch, pos, pos+n)
					pos += n
				}
			}
			state := broken.Checkpoint()
			if !reflect.DeepEqual(state, ref.Checkpoint()) {
				t.Fatalf("seed %d chunking %d: chunking changed the schedule state", seed, ci)
			}

			restored := NewLinkFaults(linkSpec(seed), channels)
			if err := restored.Restore(state); err != nil {
				t.Fatal(err)
			}
			// Continuation: per-cycle on the unbroken schedule, mixed
			// per-cycle and bulk on the restored one.
			for ch := 0; ch < channels; ch++ {
				var refDown int64
				for now := int64(mid); now < horizon; now++ {
					if ref.Down(ch, now) {
						refDown++
					}
				}
				var resDown int64
				for now := int64(mid); now < horizon; {
					if now%3 == 0 {
						if restored.Down(ch, now) {
							resDown++
						}
						now++
						continue
					}
					span := int64(100 + now%77)
					if now+span > horizon {
						span = horizon - now
					}
					resDown += restored.CountDown(ch, now, now+span)
					now += span
				}
				if refDown != resDown {
					t.Errorf("seed %d chunking %d channel %d: down %d unbroken vs %d restored",
						seed, ci, ch, refDown, resDown)
				}
			}
			if ref.DownCycles() != restored.DownCycles() {
				t.Errorf("seed %d chunking %d: DownCycles %d unbroken vs %d restored",
					seed, ci, ref.DownCycles(), restored.DownCycles())
			}
			if ref.faultCnt != restored.faultCnt {
				t.Errorf("seed %d chunking %d: renewals %d unbroken vs %d restored",
					seed, ci, ref.faultCnt, restored.faultCnt)
			}
		}
	}
}

// TestLinkFaultsRestoreRejectsWrongGeometry: a snapshot only restores
// into a schedule over the same channel count.
func TestLinkFaultsRestoreRejectsWrongGeometry(t *testing.T) {
	lf := NewLinkFaults(linkSpec(1), 4)
	state := lf.Checkpoint()
	other := NewLinkFaults(linkSpec(1), 5)
	if err := other.Restore(state); err == nil {
		t.Error("restore accepted a snapshot over a different channel count")
	}
}

// TestCoinRestoreMatchesUnbrokenRun: snapshot a loss coin mid-stream
// and the restored copy must flip the remaining sequence identically,
// with identical heads/total accounting.
func TestCoinRestoreMatchesUnbrokenRun(t *testing.T) {
	const mid, horizon = 4096, 20000
	for seed := int64(1); seed <= 3; seed++ {
		ref := NewCoin(seed, 0x10c4, 0.01)
		broken := NewCoin(seed, 0x10c4, 0.01)
		for i := 0; i < mid; i++ {
			ref.Next()
			broken.Next()
		}
		restored := NewCoin(seed, 0x10c4, 0.01)
		restored.Restore(broken.Checkpoint())
		for i := mid; i < horizon; i++ {
			if ref.Next() != restored.Next() {
				t.Fatalf("seed %d: coin sequences diverge at flip %d", seed, i)
			}
		}
		if ref.Hits() != restored.Hits() {
			t.Errorf("seed %d: hit accounting differs: %d unbroken vs %d restored", seed, ref.Hits(), restored.Hits())
		}
		if !reflect.DeepEqual(ref.Checkpoint(), restored.Checkpoint()) {
			t.Errorf("seed %d: post-run coin states differ", seed)
		}
	}
}
