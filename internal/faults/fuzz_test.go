package faults

import "testing"

// FuzzParseSpec drives the fault-schedule spec parser with arbitrary
// input. Properties: ParseSpec never panics, and any spec it accepts
// round-trips exactly through its canonical String form (so schedules
// recorded in experiment logs reparse to the same schedule).
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"seed=7",
		"loss=0.01",
		"mttf=50000",
		"stall=20..200",
		"seed=3,loss=0.5,mttf=50000,stall=20..200",
		"stall=40",
		" seed = 1 , loss = 0.1 ",
		"seed=-9223372036854775808",
		"loss=1e-300",
		"mttf=1e308",
		"stall=..",
		"stall=1..",
		"seed=7,,loss=0.1",
		"loss=0x1p-3",
		"=",
		",,,",
		"stall=9223372036854775807..9223372036854775807",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParseSpec(text)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted invalid spec %+v: %v", text, spec, verr)
		}
		canon := spec.String()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, text, err)
		}
		if back != spec {
			t.Fatalf("round trip of %q: %+v -> %q -> %+v", text, spec, canon, back)
		}
	})
}
