package faults

import "fmt"

// Every fault schedule is driven by plain splitmix64 generator state
// (one uint64 per stream) plus renewal bookkeeping, so checkpointing is
// an exact copy: a restored schedule produces the same remaining fault
// sequence, cycle for cycle, as an uninterrupted one.

// LinkState is one channel's serialized schedule state.
type LinkState struct {
	RNG        uint64
	Start, End int64
	Init       bool
}

// LinkFaultsState is the serialized state of a LinkFaults schedule.
type LinkFaultsState struct {
	Links      []LinkState
	DownCycles int64
	FaultCount int64
}

// Checkpoint captures the schedule's current state.
func (lf *LinkFaults) Checkpoint() LinkFaultsState {
	s := LinkFaultsState{
		Links:      make([]LinkState, len(lf.links)),
		DownCycles: lf.downCnt,
		FaultCount: lf.faultCnt,
	}
	for i, st := range lf.links {
		s.Links[i] = LinkState{RNG: st.r.state, Start: st.start, End: st.end, Init: st.init}
	}
	return s
}

// Restore overwrites the schedule with a previously captured state. The
// state must come from a schedule over the same channel count.
func (lf *LinkFaults) Restore(s LinkFaultsState) error {
	if len(s.Links) != len(lf.links) {
		return fmt.Errorf("faults: checkpoint has %d channels, schedule has %d", len(s.Links), len(lf.links))
	}
	for i, st := range s.Links {
		lf.links[i] = linkState{r: rng{state: st.RNG}, start: st.Start, end: st.End, init: st.Init}
	}
	lf.downCnt = s.DownCycles
	lf.faultCnt = s.FaultCount
	return nil
}

// CoinState is the serialized state of a Coin stream.
type CoinState struct {
	RNG          uint64
	Heads, Total int64
}

// Checkpoint captures the coin's current state.
func (c *Coin) Checkpoint() CoinState {
	return CoinState{RNG: c.r.state, Heads: c.heads, Total: c.total}
}

// Restore overwrites the coin's state; the probability is configuration
// and stays as constructed.
func (c *Coin) Restore(s CoinState) {
	c.r.state = s.RNG
	c.heads = s.Heads
	c.total = s.Total
}
