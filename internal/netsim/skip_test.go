package netsim

import (
	"testing"

	"locality/internal/faults"
	"locality/internal/topology"
)

func TestSkippableGating(t *testing.T) {
	// Fault-free and drained: skippable.
	nw := newFaultyNet(t, 4, 2, 4, nil)
	if !nw.Skippable() {
		t.Error("drained fault-free fabric should be skippable")
	}
	// Traffic in flight: not skippable.
	if err := nw.Send(&Message{Src: 0, Dst: 3, Size: 4}); err != nil {
		t.Fatal(err)
	}
	if nw.Skippable() {
		t.Error("fabric with queued traffic must not be skippable")
	}
	for i := 0; i < 200 && nw.Busy(); i++ {
		nw.Step()
	}
	if nw.Busy() {
		t.Fatal("message did not drain")
	}
	if !nw.Skippable() {
		t.Error("fabric should be skippable again after draining")
	}
	// A fault model without bulk counting support: never skippable,
	// even when drained — correctness degrades to the tick path.
	plain := newFaultyNet(t, 4, 2, 4, oneDown{ch: 0})
	if plain.Skippable() {
		t.Error("fabric with a non-bulk fault model must not be skippable")
	}
	// faults.LinkFaults supports bulk counting: skippable when drained.
	lf := faults.NewLinkFaults(faults.Spec{Seed: 1, LinkMTTF: 100}, topology.MustNew(4, 2).ChannelCount())
	withLF := newFaultyNet(t, 4, 2, 4, lf)
	if !withLF.Skippable() {
		t.Error("drained fabric with LinkFaults should be skippable")
	}
}

// TestSkippableWithLocalPending covers the lazy-drain rule for
// local-bypass messages: their delivery times are fixed at Send, so a
// fabric whose only pending work is local deliveries stays skippable
// up to (but not past) the earliest due time, while Quiesced — the
// watchdog's "no work anywhere" predicate — still reports them.
func TestSkippableWithLocalPending(t *testing.T) {
	nw, err := New(Config{Topo: topology.MustNew(4, 2), BufferDepth: 4, LocalDelay: 10})
	if err != nil {
		t.Fatal(err)
	}
	var deliveredAt int64 = -1
	nw.SetDelivery(func(now int64, m *Message) { deliveredAt = now })
	if err := nw.Send(&Message{Src: 5, Dst: 5, Size: 3}); err != nil {
		t.Fatal(err)
	}
	if nw.Quiesced() {
		t.Error("pending local delivery should keep the fabric un-quiesced")
	}
	if !nw.Skippable() {
		t.Error("pending local delivery must not block skipping (its due time is known)")
	}
	due, ok := nw.NextLocalDue()
	if !ok || due != 10 {
		t.Fatalf("NextLocalDue = %d, %v; want 10, true", due, ok)
	}
	// Skip right up to the due cycle; the Step at the due cycle
	// delivers, exactly as per-cycle stepping would have.
	nw.SkipTo(due)
	if deliveredAt != -1 {
		t.Error("skip itself must not deliver")
	}
	nw.Step()
	if deliveredAt != 10 {
		t.Errorf("delivered at %d, want 10", deliveredAt)
	}
	if _, ok := nw.NextLocalDue(); ok {
		t.Error("NextLocalDue still reports a pending entry after delivery")
	}
	if !nw.Quiesced() {
		t.Error("fabric should quiesce after the local delivery")
	}

	// Matching per-cycle reference: same due, same delivery cycle.
	ref, err := New(Config{Topo: topology.MustNew(4, 2), BufferDepth: 4, LocalDelay: 10})
	if err != nil {
		t.Fatal(err)
	}
	var refAt int64 = -1
	ref.SetDelivery(func(now int64, m *Message) { refAt = now })
	if err := ref.Send(&Message{Src: 5, Dst: 5, Size: 3}); err != nil {
		t.Fatal(err)
	}
	for ref.Busy() {
		ref.Step()
	}
	if refAt != deliveredAt {
		t.Errorf("stepped delivery at %d, skipped at %d", refAt, deliveredAt)
	}
}

// TestSkipToPanicsPastLocalDue pins the contract: a skip that jumps
// over a known local delivery time is a kernel bug, not a silent
// late delivery.
func TestSkipToPanicsPastLocalDue(t *testing.T) {
	nw, err := New(Config{Topo: topology.MustNew(4, 2), BufferDepth: 4, LocalDelay: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Send(&Message{Src: 2, Dst: 2, Size: 1}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SkipTo past a pending local due time should panic")
		}
	}()
	nw.SkipTo(6) // due is 5
}

func TestSkipToAdvancesClockAndPanicsWhenBusy(t *testing.T) {
	nw := newFaultyNet(t, 4, 2, 4, nil)
	nw.SkipTo(500)
	if nw.Now() != 500 {
		t.Errorf("Now = %d, want 500", nw.Now())
	}
	nw.Step()
	if nw.Now() != 501 {
		t.Errorf("Now after Step = %d, want 501", nw.Now())
	}
	if err := nw.Send(&Message{Src: 0, Dst: 1, Size: 2}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SkipTo on a busy fabric should panic")
		}
	}()
	nw.SkipTo(1000)
}

// TestSkipToMatchesSteppedFaultAccounting compares a fabric that idles
// through a faulty span cycle by cycle against one that skips it:
// fault-stall accounting and the downstream fault schedule must be
// identical, so traffic after the span sees the same stalls.
func TestSkipToMatchesSteppedFaultAccounting(t *testing.T) {
	const k, n, idleSpan = 4, 2, 5000
	spec := faults.Spec{Seed: 11, LinkMTTF: 400, StallMin: 8, StallMax: 60}
	tor := topology.MustNew(k, n)
	channels := tor.ChannelCount()

	build := func() (*Network, *faults.LinkFaults) {
		lf := faults.NewLinkFaults(spec, channels)
		return newFaultyNet(t, k, n, 4, lf), lf
	}
	stepped, steppedLF := build()
	for i := 0; i < idleSpan; i++ {
		stepped.Step()
	}
	skipped, skippedLF := build()
	skipped.SkipTo(idleSpan)

	if stepped.Now() != skipped.Now() {
		t.Fatalf("clocks differ: %d vs %d", stepped.Now(), skipped.Now())
	}
	ss, ks := stepped.Snapshot(), skipped.Snapshot()
	if ss.FaultedChannelCycles != ks.FaultedChannelCycles {
		t.Errorf("FaultedChannelCycles %d stepped vs %d skipped", ss.FaultedChannelCycles, ks.FaultedChannelCycles)
	}
	if ss.FaultedChannelCycles == 0 {
		t.Error("span saw no faulted channel-cycles; test is vacuous")
	}
	if steppedLF.DownCycles() != skippedLF.DownCycles() {
		t.Errorf("DownCycles %d stepped vs %d skipped", steppedLF.DownCycles(), skippedLF.DownCycles())
	}

	// Identical traffic after the span must behave identically: the
	// skip left every channel's fault schedule where stepping did.
	inject := func(nw *Network) (delivered int64, lastAt int64) {
		nw.SetDelivery(func(now int64, m *Message) { delivered++; lastAt = now })
		for src := 0; src < tor.Nodes(); src += 3 {
			if err := nw.Send(&Message{Src: src, Dst: (src + 5) % tor.Nodes(), Size: 6}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20000 && nw.Busy(); i++ {
			nw.Step()
		}
		if nw.Busy() {
			t.Fatal("post-skip traffic did not drain")
		}
		if err := nw.Check(); err != nil {
			t.Fatal(err)
		}
		return delivered, lastAt
	}
	sd, sa := inject(stepped)
	kd, ka := inject(skipped)
	if sd != kd || sa != ka {
		t.Errorf("post-span traffic diverged: stepped %d msgs last at %d, skipped %d msgs last at %d", sd, sa, kd, ka)
	}
}
