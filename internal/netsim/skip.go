package netsim

import "fmt"

// bulkFaultCounter is the optional fast path a LinkFaultModel can
// provide for quiescence skipping: CountDown returns how many cycles
// in [from, to) the channel is down, advancing the model's internal
// state exactly as the equivalent sequence of per-cycle Down queries
// would. faults.LinkFaults implements it; a model without it makes the
// fabric unskippable (Skippable returns false) rather than inaccurate.
type bulkFaultCounter interface {
	CountDown(channel int, from, to int64) int64
}

// Skippable reports whether the fabric's per-cycle Step is fully
// predictable right now, so a span of cycles may be applied through
// SkipTo instead. A drained fabric only does two things per cycle:
// advance the clock, and — with fault injection enabled — query every
// channel's fault state, charging faultStalls for down channels even
// though no worm is stalled by them. The latter is reproducible in
// bulk only when the fault model supports CountDown.
//
// Pending local-bypass messages do NOT block skipping: their delivery
// times were fixed when Send accepted them, so the fabric stays
// predictable right up to the earliest due time. NextLocalDue exposes
// that bound; SkipTo enforces it.
func (nw *Network) Skippable() bool {
	if nw.queued != 0 || nw.flitsIn != nw.flitsOut {
		return false
	}
	if nw.cfg.Faults == nil {
		return true
	}
	_, ok := nw.cfg.Faults.(bulkFaultCounter)
	return ok
}

// NextLocalDue returns the earliest delivery time among pending
// local-bypass messages, and whether any are pending. A skippable
// fabric with a pending local delivery may only skip to cycles ≤ that
// bound (the delivering Step itself must execute).
func (nw *Network) NextLocalDue() (int64, bool) {
	if len(nw.local) == 0 {
		return 0, false
	}
	min := nw.local[0].due
	for _, e := range nw.local[1:] {
		if e.due < min {
			min = e.due
		}
	}
	return min, true
}

// SkipTo advances a skippable fabric's clock straight to nowN,
// applying in bulk exactly what the skipped Steps would have done:
// nothing, except per-channel fault-state advancement and the
// faultStalls accounting for down channel-cycles. Panics if the fabric
// is not Skippable, time would move backwards, or the span would jump
// over a pending local delivery — all kernel contract violations, not
// runtime conditions.
func (nw *Network) SkipTo(nowN int64) {
	if nowN < nw.now {
		panic(fmt.Sprintf("netsim: SkipTo(%d) behind current cycle %d", nowN, nw.now))
	}
	if !nw.Skippable() {
		panic(fmt.Sprintf("netsim: SkipTo(%d) on a busy or unskippable fabric", nowN))
	}
	for _, e := range nw.local {
		// An entry with due < nowN should have delivered during a
		// skipped cycle: the caller overshot its announced bound. The
		// Step at nowN itself still delivers due == nowN entries.
		if e.due < nowN {
			panic(fmt.Sprintf("netsim: SkipTo(%d) jumps over local delivery due at %d", nowN, e.due))
		}
	}
	if nw.cfg.Faults != nil && nowN > nw.now {
		bulk := nw.cfg.Faults.(bulkFaultCounter)
		channels := nw.nodes * nw.ports
		for ch := 0; ch < channels; ch++ {
			nw.faultStalls.Addn(bulk.CountDown(ch, nw.now, nowN))
		}
	}
	nw.now = nowN
}
