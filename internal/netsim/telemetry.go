package netsim

import "locality/internal/telemetry"

// QueuedMessages returns the number of messages waiting in injection
// queues (partially injected messages included). O(1).
func (nw *Network) QueuedMessages() int { return nw.queued }

// InFlightFlits counts flits currently buffered anywhere in the fabric
// (injection buffers included; queued-but-uninjected messages are
// not). O(active switches).
func (nw *Network) InFlightFlits() int { return nw.inFlightFlits() }

// PublishTelemetry registers the fabric's counters and occupancy as
// pull-based gauges. Everything published here is read from existing
// state at sample time; the fabric's hot path is untouched. Safe on a
// nil registry.
func (nw *Network) PublishTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("net/injected", func() float64 { return float64(nw.injected.Value()) })
	reg.GaugeFunc("net/delivered", func() float64 { return float64(nw.deliveredCount.Value()) })
	reg.GaugeFunc("net/flit_hops", func() float64 { return float64(nw.flitHops.Value()) })
	reg.GaugeFunc("net/queued_messages", func() float64 { return float64(nw.QueuedMessages()) })
	reg.GaugeFunc("net/in_flight_flits", func() float64 { return float64(nw.InFlightFlits()) })
	reg.GaugeFunc("net/active_routers", func() float64 { return float64(nw.ActiveRouters()) })
	reg.GaugeFunc("net/latency_mean", func() float64 { return nw.latency.Mean() })
	reg.GaugeFunc("net/net_latency_mean", func() float64 { return nw.netLatency.Mean() })
	reg.GaugeFunc("net/hops_mean", func() float64 { return nw.hops.Mean() })
	reg.GaugeFunc("net/fault_stall_cycles", func() float64 { return float64(nw.faultStalls.Value()) })
	// The fault model is an interface; publish through it when the
	// concrete model (faults.LinkFaults) supports telemetry.
	if pub, ok := nw.cfg.Faults.(interface {
		PublishTelemetry(*telemetry.Registry)
	}); ok {
		pub.PublishTelemetry(reg)
	}
}
