package netsim

import (
	"math/rand"
	"strings"
	"testing"

	"locality/internal/faults"
	"locality/internal/topology"
)

// allDown fails every channel from a given cycle on — an engineered
// permanent outage for watchdog tests.
type allDown struct{ from int64 }

func (a allDown) Down(ch int, now int64) bool { return now >= a.from }

// oneDown permanently fails a single channel.
type oneDown struct{ ch int }

func (o oneDown) Down(ch int, now int64) bool { return ch == o.ch }

func newFaultyNet(t *testing.T, k, n, depth int, fm LinkFaultModel) *Network {
	t.Helper()
	nw, err := New(Config{Topo: topology.MustNew(k, n), BufferDepth: depth, Faults: fm})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestLinkFaultsDelayButConserve(t *testing.T) {
	// Random traffic over a fabric with frequent transient stalls: every
	// message must still deliver, flit conservation must hold throughout,
	// and delivery must be strictly slower than the fault-free run.
	spec := faults.Spec{Seed: 5, LinkMTTF: 300, StallMin: 10, StallMax: 80}
	build := func(fm LinkFaultModel) (*Network, *int, *int64) {
		nw := newFaultyNet(t, 4, 2, 4, fm)
		delivered := 0
		var lastAt int64
		nw.SetDelivery(func(now int64, m *Message) { delivered++; lastAt = now })
		return nw, &delivered, &lastAt
	}
	send := func(nw *Network) {
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 120; i++ {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src == dst {
				dst = (dst + 1) % 16
			}
			if err := nw.Send(&Message{Src: src, Dst: dst, Size: 6}); err != nil {
				t.Fatal(err)
			}
		}
	}

	clean, cleanN, cleanAt := build(nil)
	send(clean)
	drain(t, clean, 100000)

	lf := faults.NewLinkFaults(spec, clean.topo.ChannelCount())
	faulty, faultyN, faultyAt := build(lf)
	send(faulty)
	for i := 0; i < 200000 && faulty.Busy(); i++ {
		faulty.Step()
		if i%1000 == 0 {
			if err := faulty.Check(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if faulty.Busy() {
		t.Fatal("faulty network did not drain (transient faults must not lose traffic)")
	}
	if err := faulty.Check(); err != nil {
		t.Fatal(err)
	}
	if *faultyN != *cleanN {
		t.Fatalf("faulty run delivered %d messages, clean run %d", *faultyN, *cleanN)
	}
	if *faultyAt <= *cleanAt {
		t.Errorf("faulty drain finished at %d, not later than clean %d", *faultyAt, *cleanAt)
	}
	if faulty.Snapshot().FaultedChannelCycles == 0 {
		t.Error("no faulted channel-cycles recorded at mttf=300")
	}
}

func TestLinkFaultDeliveryDeterministic(t *testing.T) {
	spec := faults.Spec{Seed: 9, LinkMTTF: 200, StallMin: 5, StallMax: 40}
	run := func() []int64 {
		tor := topology.MustNew(4, 2)
		nw := newFaultyNet(t, 4, 2, 4, faults.NewLinkFaults(spec, tor.ChannelCount()))
		var times []int64
		nw.SetDelivery(func(now int64, m *Message) { times = append(times, now) })
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 60; i++ {
			src, dst := rng.Intn(16), rng.Intn(16)
			if src == dst {
				continue
			}
			if err := nw.Send(&Message{Src: src, Dst: dst, Size: 5}); err != nil {
				t.Fatal(err)
			}
		}
		drain(t, nw, 200000)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at cycle %d vs %d: same seed must reproduce exactly", i, a[i], b[i])
		}
	}
}

func TestPermanentFaultStallsDetectably(t *testing.T) {
	// Kill every channel: a message between distinct nodes can never
	// progress. The network must stay busy with LastProgress frozen —
	// the condition the machine watchdog converts into ErrStalled — and
	// the diagnostic snapshot must name the stuck traffic.
	nw := newFaultyNet(t, 4, 2, 4, allDown{from: 0})
	if err := nw.Send(&Message{Src: 0, Dst: 5, Size: 4}); err != nil {
		t.Fatal(err)
	}
	nw.Run(2000)
	if !nw.Busy() {
		t.Fatal("message vanished from a fully faulted fabric")
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	frozen := nw.LastProgress()
	if age := nw.Now() - frozen; age < 1500 {
		t.Errorf("last progress age %d, want ≥ 1500 (injection finishes quickly, then nothing moves)", age)
	}
	snap := nw.DiagSnapshot()
	if !strings.Contains(snap, "router 0") || !strings.Contains(snap, "0→5") {
		t.Errorf("diagnostic snapshot does not identify the stuck worm:\n%s", snap)
	}
}

func TestSingleDeadChannelRoutesAroundNothing(t *testing.T) {
	// E-cube routing is deterministic: traffic whose route crosses the
	// dead channel blocks; unrelated traffic still flows and the fabric
	// keeps making progress.
	// Channel id 0 is router 0, dim-0 positive: the 0→1 link.
	nw := newFaultyNet(t, 4, 1, 4, oneDown{ch: 0})
	var got []int
	nw.SetDelivery(func(now int64, m *Message) { got = append(got, m.Dst) })
	if err := nw.Send(&Message{Src: 0, Dst: 1, Size: 4}); err != nil { // blocked forever
		t.Fatal(err)
	}
	if err := nw.Send(&Message{Src: 2, Dst: 3, Size: 4}); err != nil { // unaffected
		t.Fatal(err)
	}
	nw.Run(500)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("deliveries = %v, want only node 3", got)
	}
	if !nw.Busy() {
		t.Error("blocked worm should keep the fabric busy")
	}
	if err := nw.Check(); err != nil {
		t.Error(err)
	}
}

func TestCheckPassesOnCleanTraffic(t *testing.T) {
	nw := newNet(t, 8, 2, 4)
	for i := 0; i < 40; i++ {
		if err := nw.Send(&Message{Src: i % 64, Dst: (i*7 + 3) % 64, Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		nw.Step()
		if err := nw.Check(); err != nil {
			t.Fatalf("mid-flight cycle %d: %v", i, err)
		}
	}
	drain(t, nw, 100000)
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	if nw.flitsIn == 0 || nw.flitsIn != nw.flitsOut {
		t.Errorf("after drain flitsIn=%d flitsOut=%d, want equal and nonzero", nw.flitsIn, nw.flitsOut)
	}
}
