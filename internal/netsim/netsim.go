// Package netsim is a flit-level simulator of packet-switched, wormhole
// routed k-ary n-dimensional torus networks, mirroring the interconnect
// of the architecture in the paper's Section 3: a pair of unidirectional
// channels between neighboring switches in every dimension, single-cycle
// base delay through a switch, e-cube (dimension-ordered) routing, a
// moderate amount of buffering per switch input, and one flit crossing
// a channel per network cycle.
//
// Because minimal routing on torus rings is cyclic, each physical
// channel carries two virtual channels with the standard dateline
// discipline: a worm travels on VC0 within a ring until it crosses the
// wraparound edge (the dateline), after which it uses VC1. Combined
// with dimension-ordered routing this makes the network provably
// deadlock-free.
//
// The simulator is synchronous: Step advances every switch by one
// network cycle using a two-phase (decide, commit) update so results
// are independent of iteration order. Messages destined for their own
// source node bypass the network and deliver after a configurable local
// latency; they are excluded from network traffic statistics, matching
// the paper's convention that nodes never send network messages to
// themselves.
package netsim

import (
	"fmt"
	"sort"
	"strings"

	"locality/internal/stats"
	"locality/internal/topology"
)

// Message is one network packet. Callers set Src, Dst, Size and
// Payload; the network fills in the accounting fields.
type Message struct {
	Src, Dst int
	// Size is the message length in flits (8-bit channel flits in the
	// reference architecture). Must be ≥ 1.
	Size int
	// Payload is opaque to the network.
	Payload any

	// EnqueuedAt is when Send accepted the message (N-cycles).
	EnqueuedAt int64
	// InjectedAt is when the head flit entered the source switch.
	InjectedAt int64
	// DeliveredAt is when the tail flit reached the destination node.
	DeliveredAt int64
	// Hops is the number of switch-to-switch channels traversed.
	Hops int

	remaining int // flits not yet emitted by the injector
	curDim    int // dimension the worm is currently traveling (-1 before first hop)
	vcClass   int // 0 before the dateline in curDim, 1 after
}

// Latency returns the end-to-end message latency including source
// queueing, in network cycles.
func (m *Message) Latency() int64 { return m.DeliveredAt - m.EnqueuedAt }

// NetworkLatency returns the latency from first flit entering the
// switch fabric to tail delivery, excluding source queueing.
func (m *Message) NetworkLatency() int64 { return m.DeliveredAt - m.InjectedAt }

// flit is one channel-width unit of a message in flight.
type flit struct {
	msg       *Message
	seq       int   // 0-based flit index; 0 is the head
	arrivedAt int64 // cycle the flit entered its current buffer
}

func (f flit) isHead() bool { return f.seq == 0 }
func (f flit) isTail() bool { return f.seq == f.msg.Size-1 }

// fifo is a bounded flit queue (one switch input buffer).
type fifo struct {
	buf   []flit
	head  int
	count int
}

func newFIFO(depth int) *fifo { return &fifo{buf: make([]flit, depth)} }

func (q *fifo) full() bool  { return q.count == len(q.buf) }
func (q *fifo) empty() bool { return q.count == 0 }

func (q *fifo) push(f flit) {
	if q.full() {
		panic("netsim: push to full buffer")
	}
	q.buf[(q.head+q.count)%len(q.buf)] = f
	q.count++
}

func (q *fifo) peek() flit {
	if q.empty() {
		panic("netsim: peek at empty buffer")
	}
	return q.buf[q.head]
}

func (q *fifo) pop() flit {
	f := q.peek()
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return f
}

// LinkFaultModel decides whether a directional physical channel is
// faulted at a given cycle. A faulted channel transfers no flits: the
// worm holding it stalls in place and ordinary wormhole backpressure
// propagates upstream, so no traffic is lost. Channels are identified
// as router·2n + port (see the port indexing above); queries are
// monotone in time per channel. A nil model means a fault-free fabric.
type LinkFaultModel interface {
	Down(channel int, now int64) bool
}

// Config parameterizes the network.
type Config struct {
	Topo *topology.Torus
	// BufferDepth is the per-virtual-channel flit buffer depth at each
	// switch input.
	BufferDepth int
	// LocalDelay is the delivery latency for src == dst messages,
	// which bypass the fabric (N-cycles). Defaults to 1 when zero.
	LocalDelay int
	// Faults, when non-nil, injects transient link faults (stalled
	// channels). Nil leaves the fabric behaviorally identical to a
	// fault-free build.
	Faults LinkFaultModel
}

// DeliveryFunc receives each message when its tail flit arrives.
type DeliveryFunc func(now int64, msg *Message)

// Port/buffer indexing at each router, for a topology with n dims:
//
//	directional physical ports: o ∈ [0, 2n), o = 2·dim + (dir<0 ? 1 : 0)
//	virtual input buffers:      o·2 + vc for vc ∈ {0, 1}
//	injection input buffer:     4n (single buffer, no VC)
//	virtual output keys:        o·2 + vc, ejection key 4n
type router struct {
	inputs []*fifo
	// owner[key] is the message holding virtual output key, or nil.
	owner []*Message
	// ownerInput[key] is the input buffer index feeding that worm.
	ownerInput []int
	// lastGranted[key] rotates arbitration among inputs for a key.
	lastGranted []int
	// lastVC[o] rotates the physical channel between its two VCs.
	lastVC []int
}

// move is one committed flit transfer for the two-phase update.
type move struct {
	router  int
	input   int
	outKey  int
	release bool     // tail flit: release virtual output ownership
	acquire *Message // head flit granted the output this cycle
	newDim  int      // dimension entered by the acquiring head (fabric moves)
	crossed bool     // this hop crosses the dateline
	eject   bool
	dest    int // destination router for fabric moves
	destIn  int // destination input buffer index
}

// Network simulates the whole fabric.
type Network struct {
	cfg   Config
	topo  *topology.Torus
	dims  int
	k     int
	ports int // directional physical ports per router (2·dims)

	routers []router
	// injectQ[v] holds messages waiting to enter the fabric at node v.
	injectQ [][]*Message
	// queued counts messages across all injection queues (partially
	// injected included), kept so Quiesced is O(1).
	queued int
	local  []localEntry
	now    int64

	deliver DeliveryFunc

	// lastProgress is the most recent cycle on which any flit entered,
	// moved within, or left the fabric (or a local message delivered).
	// The deadlock watchdog compares it against Now when traffic is in
	// flight.
	lastProgress int64

	// Lifetime flit conservation counters (never reset): every flit
	// accepted into an injection buffer, and every flit ejected at a
	// destination. Check verifies injected == ejected + in-flight.
	flitsIn  int64
	flitsOut int64

	// Statistics (since the last ResetStats).
	statsSince     int64
	injected       stats.Counter
	deliveredCount stats.Counter
	flitHops       stats.Counter // flit-channel traversals (fabric only)
	faultStalls    stats.Counter // channel-cycles lost to link faults
	latency        stats.Mean    // end-to-end incl. source queueing
	netLatency     stats.Mean    // fabric-only latency
	hops           stats.Mean
	sizes          stats.Mean
}

type localEntry struct {
	msg *Message
	due int64
}

// New validates the configuration and builds an idle network.
func New(cfg Config) (*Network, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("netsim: nil topology")
	}
	if cfg.BufferDepth < 1 {
		return nil, fmt.Errorf("netsim: buffer depth %d, must be ≥ 1", cfg.BufferDepth)
	}
	if cfg.LocalDelay == 0 {
		cfg.LocalDelay = 1
	}
	if cfg.LocalDelay < 0 {
		return nil, fmt.Errorf("netsim: negative local delay %d", cfg.LocalDelay)
	}
	n := cfg.Topo.Nodes()
	dims := cfg.Topo.N()
	ports := 2 * dims
	nw := &Network{
		cfg:     cfg,
		topo:    cfg.Topo,
		dims:    dims,
		k:       cfg.Topo.K(),
		ports:   ports,
		routers: make([]router, n),
		injectQ: make([][]*Message, n),
	}
	for v := range nw.routers {
		r := &nw.routers[v]
		r.inputs = make([]*fifo, 2*ports+1)
		for i := range r.inputs {
			r.inputs[i] = newFIFO(cfg.BufferDepth)
		}
		r.owner = make([]*Message, 2*ports+1)
		r.ownerInput = make([]int, 2*ports+1)
		r.lastGranted = make([]int, 2*ports+1)
		r.lastVC = make([]int, ports)
	}
	return nw, nil
}

// SetDelivery installs the delivery callback.
func (nw *Network) SetDelivery(fn DeliveryFunc) { nw.deliver = fn }

// Now returns the current network cycle.
func (nw *Network) Now() int64 { return nw.now }

// ejectKey is the virtual output key of the ejection port.
func (nw *Network) ejectKey() int { return 2 * nw.ports }

// injectIn is the input buffer index of the injection port.
func (nw *Network) injectIn() int { return 2 * nw.ports }

// Send enqueues a message for injection at its source node. Messages
// with src == dst bypass the fabric and deliver after LocalDelay.
func (nw *Network) Send(msg *Message) error {
	if msg.Size < 1 {
		return fmt.Errorf("netsim: message size %d, must be ≥ 1", msg.Size)
	}
	if msg.Src < 0 || msg.Src >= nw.topo.Nodes() || msg.Dst < 0 || msg.Dst >= nw.topo.Nodes() {
		return fmt.Errorf("netsim: src %d or dst %d out of range [0,%d)", msg.Src, msg.Dst, nw.topo.Nodes())
	}
	msg.EnqueuedAt = nw.now
	msg.remaining = msg.Size
	msg.curDim = -1
	msg.vcClass = 0
	if msg.Src == msg.Dst {
		msg.InjectedAt = nw.now
		nw.local = append(nw.local, localEntry{msg: msg, due: nw.now + int64(nw.cfg.LocalDelay)})
		return nil
	}
	nw.injectQ[msg.Src] = append(nw.injectQ[msg.Src], msg)
	nw.queued++
	return nil
}

// outputPortFor returns the directional physical port the head flit
// requests at router v under e-cube routing (lowest dimension first,
// minimal direction, ties toward positive), or the ejection key when v
// is the destination.
func (nw *Network) outputPortFor(v, dst int) (port int, eject bool) {
	if v == dst {
		return 0, true
	}
	a, b := v, dst
	for dim := 0; dim < nw.dims; dim++ {
		ca, cb := a%nw.k, b%nw.k
		if ca != cb {
			d := ((cb-ca)%nw.k + nw.k) % nw.k
			switch {
			case 2*d < nw.k:
				return 2 * dim, false
			case 2*d > nw.k:
				return 2*dim + 1, false
			default:
				// Exactly halfway around the ring: both directions are
				// minimal. Split ties deterministically by the parity
				// of the current coordinate so neither direction's
				// channels carry systematically more load (coordinates
				// at a tie are uniform over the ring). The tie exists
				// only on the first hop in a dimension, so the route
				// stays consistent and any two messages between the
				// same endpoints take the same path.
				if ca%2 == 0 {
					return 2 * dim, false
				}
				return 2*dim + 1, false
			}
		}
		a /= nw.k
		b /= nw.k
	}
	return 0, true
}

// crossesDateline reports whether traversing port o out of router v
// crosses the ring's wraparound edge: coordinate k−1 → 0 in the
// positive direction, 0 → k−1 in the negative.
func (nw *Network) crossesDateline(v, o int) bool {
	dim := o / 2
	coord := v
	for i := 0; i < dim; i++ {
		coord /= nw.k
	}
	coord %= nw.k
	if o%2 == 0 {
		return coord == nw.k-1
	}
	return coord == 0
}

// vcFor returns the virtual channel a head flit must use on port o:
// VC0 when entering a new dimension, its accumulated class otherwise.
func vcFor(msg *Message, o int) int {
	if msg.curDim != o/2 {
		return 0
	}
	return msg.vcClass
}

// neighborFor returns the router on the far side of directional port o
// of router v.
func (nw *Network) neighborFor(v, o int) int {
	dim := o / 2
	dir := 1
	if o%2 == 1 {
		dir = -1
	}
	return nw.topo.Neighbor(v, dim, dir)
}

// Step advances the network one cycle.
func (nw *Network) Step() {
	nw.stepInjection()
	moves := nw.decide()
	nw.commit(moves)
	nw.stepLocal()
	nw.now++
}

// Run advances the network by cycles steps.
func (nw *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		nw.Step()
	}
}

// stepInjection streams flits of queued messages into each node's
// injection buffer, one flit per cycle per node.
func (nw *Network) stepInjection() {
	for v := range nw.routers {
		q := nw.injectQ[v]
		if len(q) == 0 {
			continue
		}
		in := nw.routers[v].inputs[nw.injectIn()]
		if in.full() {
			continue
		}
		msg := q[0]
		seq := msg.Size - msg.remaining
		if seq == 0 {
			msg.InjectedAt = nw.now
			nw.injected.Inc()
			nw.sizes.Add(float64(msg.Size))
		}
		in.push(flit{msg: msg, seq: seq, arrivedAt: nw.now})
		nw.flitsIn++
		nw.lastProgress = nw.now
		msg.remaining--
		if msg.remaining == 0 {
			nw.injectQ[v] = q[1:]
			nw.queued--
		}
	}
}

// decide computes at most one flit transfer per physical channel (and
// per ejection port) based on cycle-start state.
func (nw *Network) decide() []move {
	var moves []move
	for v := range nw.routers {
		r := &nw.routers[v]
		// Directional physical channels: arbitrate between the two VCs.
		for o := 0; o < nw.ports; o++ {
			if nw.cfg.Faults != nil && nw.cfg.Faults.Down(v*nw.ports+o, nw.now) {
				// The channel is faulted this cycle: neither VC may
				// transfer a flit; worms stall in place.
				nw.faultStalls.Inc()
				continue
			}
			firstVC := 1 - r.lastVC[o]
			granted := false
			for attempt := 0; attempt < 2 && !granted; attempt++ {
				vc := (firstVC + attempt) % 2
				if mv, ok := nw.decideVirtualOutput(v, r, o*2+vc); ok {
					moves = append(moves, mv)
					r.lastVC[o] = vc
					granted = true
				}
			}
		}
		// Ejection port.
		if mv, ok := nw.decideVirtualOutput(v, r, nw.ejectKey()); ok {
			moves = append(moves, mv)
		}
	}
	return moves
}

// decideVirtualOutput picks the flit (if any) to send through virtual
// output key this cycle at router v.
func (nw *Network) decideVirtualOutput(v int, r *router, key int) (move, bool) {
	if owner := r.owner[key]; owner != nil {
		in := r.inputs[r.ownerInput[key]]
		if in.empty() {
			return move{}, false
		}
		f := in.peek()
		if f.msg != owner || f.arrivedAt >= nw.now {
			return move{}, false
		}
		return nw.buildMove(v, r.ownerInput[key], key, f)
	}
	// Arbitrate among input buffers whose head flit requests this key.
	nin := len(r.inputs)
	start := r.lastGranted[key]
	for i := 1; i <= nin; i++ {
		idx := (start + i) % nin
		in := r.inputs[idx]
		if in.empty() {
			continue
		}
		f := in.peek()
		if !f.isHead() || f.arrivedAt >= nw.now {
			continue
		}
		if nw.requestKey(v, f.msg) != key {
			continue
		}
		mv, ok := nw.buildMove(v, idx, key, f)
		if !ok {
			// The downstream buffer is full; no other input can use
			// this key more productively this cycle.
			return move{}, false
		}
		mv.acquire = f.msg
		r.lastGranted[key] = idx
		return mv, true
	}
	return move{}, false
}

// requestKey returns the virtual output key the message's head flit
// requests at router v.
func (nw *Network) requestKey(v int, msg *Message) int {
	o, eject := nw.outputPortFor(v, msg.Dst)
	if eject {
		return nw.ejectKey()
	}
	return o*2 + vcFor(msg, o)
}

// buildMove checks downstream capacity for a candidate transfer.
func (nw *Network) buildMove(v, input, key int, f flit) (move, bool) {
	if key == nw.ejectKey() {
		// The node sinks one flit per cycle unconditionally.
		return move{router: v, input: input, outKey: key, release: f.isTail(), eject: true}, true
	}
	o := key / 2
	next := nw.neighborFor(v, o)
	if nw.routers[next].inputs[key].full() {
		return move{}, false
	}
	return move{
		router:  v,
		input:   input,
		outKey:  key,
		release: f.isTail(),
		dest:    next,
		destIn:  key,
		newDim:  o / 2,
		crossed: nw.crossesDateline(v, o),
	}, true
}

// commit applies the decided transfers.
func (nw *Network) commit(moves []move) {
	if len(moves) > 0 {
		nw.lastProgress = nw.now
	}
	for _, mv := range moves {
		r := &nw.routers[mv.router]
		f := r.inputs[mv.input].pop()
		if mv.acquire != nil {
			r.owner[mv.outKey] = mv.acquire
			r.ownerInput[mv.outKey] = mv.input
			if !mv.eject {
				// Update the worm's dateline state as its head
				// advances; body flits inherit the reserved path.
				if f.msg.curDim != mv.newDim {
					f.msg.curDim = mv.newDim
					f.msg.vcClass = 0
				}
				if mv.crossed {
					f.msg.vcClass = 1
				}
			}
		}
		if mv.release {
			r.owner[mv.outKey] = nil
		}
		if mv.eject {
			nw.flitsOut++
			if f.isTail() {
				nw.completeDelivery(f.msg)
			}
			continue
		}
		if f.isHead() {
			f.msg.Hops++
		}
		nw.flitHops.Inc()
		f.arrivedAt = nw.now
		nw.routers[mv.dest].inputs[mv.destIn].push(f)
	}
}

func (nw *Network) completeDelivery(msg *Message) {
	msg.DeliveredAt = nw.now
	nw.deliveredCount.Inc()
	nw.latency.Add(float64(msg.Latency()))
	nw.netLatency.Add(float64(msg.NetworkLatency()))
	nw.hops.Add(float64(msg.Hops))
	if nw.deliver != nil {
		nw.deliver(nw.now, msg)
	}
}

func (nw *Network) stepLocal() {
	if len(nw.local) == 0 {
		return
	}
	kept := nw.local[:0]
	for _, e := range nw.local {
		if e.due <= nw.now {
			e.msg.DeliveredAt = nw.now
			nw.lastProgress = nw.now
			if nw.deliver != nil {
				nw.deliver(nw.now, e.msg)
			}
		} else {
			kept = append(kept, e)
		}
	}
	nw.local = kept
}

// Quiesced reports whether no traffic remains anywhere in the network.
// O(1): queued covers the injection queues, the lifetime conservation
// counters cover every switch buffer, and local covers the bypass.
func (nw *Network) Quiesced() bool {
	return nw.queued == 0 && nw.flitsIn == nw.flitsOut && len(nw.local) == 0
}

// Stats is a snapshot of the network's aggregate measurements.
type Stats struct {
	// Injected counts network messages that entered the fabric
	// (src == dst messages are excluded).
	Injected int64
	// Delivered counts fabric messages whose tails reached their
	// destinations.
	Delivered int64
	// FlitHops counts flit-channel traversals within the fabric.
	FlitHops int64
	// AvgLatency is the mean end-to-end latency including source
	// queueing (N-cycles).
	AvgLatency float64
	// AvgNetLatency excludes source queueing.
	AvgNetLatency float64
	// AvgHops is the mean hop count per delivered message.
	AvgHops float64
	// AvgSize is the mean injected message size in flits.
	AvgSize float64
	// ChannelUtilization is the mean fraction of directional channels
	// busy per cycle so far.
	ChannelUtilization float64
	// FaultedChannelCycles counts channel-cycles lost to injected link
	// faults (zero in a fault-free run).
	FaultedChannelCycles int64
	// Cycles is the number of simulated cycles.
	Cycles int64
}

// Snapshot returns aggregate statistics accumulated since the last
// ResetStats (or construction).
func (nw *Network) Snapshot() Stats {
	s := Stats{
		Injected:             nw.injected.Value(),
		Delivered:            nw.deliveredCount.Value(),
		FlitHops:             nw.flitHops.Value(),
		AvgLatency:           nw.latency.Mean(),
		AvgNetLatency:        nw.netLatency.Mean(),
		AvgHops:              nw.hops.Mean(),
		AvgSize:              nw.sizes.Mean(),
		FaultedChannelCycles: nw.faultStalls.Value(),
		Cycles:               nw.now - nw.statsSince,
	}
	if s.Cycles > 0 {
		channels := float64(nw.topo.ChannelCount())
		s.ChannelUtilization = float64(s.FlitHops) / (float64(s.Cycles) * channels)
	}
	return s
}

// ResetStats zeroes the accumulated statistics without disturbing
// in-flight traffic, so a measurement window can exclude warmup.
// Messages in flight at the reset are attributed to the window in
// which they deliver.
func (nw *Network) ResetStats() {
	nw.statsSince = nw.now
	nw.injected = stats.Counter{}
	nw.deliveredCount = stats.Counter{}
	nw.flitHops = stats.Counter{}
	nw.faultStalls = stats.Counter{}
	nw.latency = stats.Mean{}
	nw.netLatency = stats.Mean{}
	nw.hops = stats.Mean{}
	nw.sizes = stats.Mean{}
}

// inFlightFlits counts flits currently buffered anywhere in the fabric
// (injection buffers included; queued-but-uninjected messages are not).
func (nw *Network) inFlightFlits() int {
	total := 0
	for v := range nw.routers {
		for _, in := range nw.routers[v].inputs {
			total += in.count
		}
	}
	return total
}

// Check verifies the flit-conservation invariant: every flit ever
// accepted into the fabric has either been ejected at a destination or
// is still sitting in a switch buffer. Watchdog and fault code call
// this so that no code path can silently leak or duplicate flits.
func (nw *Network) Check() error {
	inFlight := int64(nw.inFlightFlits())
	if nw.flitsIn != nw.flitsOut+inFlight {
		return fmt.Errorf("netsim: flit conservation violated at cycle %d: injected %d != delivered %d + in-flight %d",
			nw.now, nw.flitsIn, nw.flitsOut, inFlight)
	}
	q := 0
	for v := range nw.routers {
		q += len(nw.injectQ[v])
	}
	if q != nw.queued {
		return fmt.Errorf("netsim: queued-message count drifted at cycle %d: counter %d, queues hold %d",
			nw.now, nw.queued, q)
	}
	return nil
}

// Busy reports whether any traffic is anywhere in the network (the
// complement of Quiesced, for watchdog use).
func (nw *Network) Busy() bool { return !nw.Quiesced() }

// LastProgress returns the most recent cycle on which a flit entered,
// moved within, or left the fabric. A busy network whose LastProgress
// stays fixed is deadlocked (or fully fault-blocked).
func (nw *Network) LastProgress() int64 { return nw.lastProgress }

// DiagSnapshot renders a structured diagnostic of the fabric's current
// occupancy for stall reports: per-switch virtual-channel buffer
// occupancy, the worm holding each virtual output, and the age of the
// oldest buffered flit. Only non-empty switches are listed, capped to
// keep reports readable.
func (nw *Network) DiagSnapshot() string {
	const maxRouters = 16
	var b strings.Builder
	fmt.Fprintf(&b, "network @ N-cycle %d: %d flits in flight, last progress at %d\n",
		nw.now, nw.inFlightFlits(), nw.lastProgress)
	var busyRouters []int
	for v := range nw.routers {
		occupied := false
		for _, in := range nw.routers[v].inputs {
			if !in.empty() {
				occupied = true
				break
			}
		}
		if occupied || len(nw.injectQ[v]) > 0 {
			busyRouters = append(busyRouters, v)
		}
	}
	sort.Ints(busyRouters)
	shown := busyRouters
	if len(shown) > maxRouters {
		shown = shown[:maxRouters]
	}
	for _, v := range shown {
		r := &nw.routers[v]
		fmt.Fprintf(&b, "  router %d (%v):", v, nw.topo.Coords(v))
		if q := len(nw.injectQ[v]); q > 0 {
			fmt.Fprintf(&b, " injectQ=%d", q)
		}
		for key, in := range r.inputs {
			if in.empty() {
				continue
			}
			f := in.peek()
			name := "inject"
			if key < 2*nw.ports {
				name = fmt.Sprintf("dim%d%svc%d", key/4, map[bool]string{true: "+", false: "-"}[(key/2)%2 == 0], key%2)
			}
			fmt.Fprintf(&b, " %s=%dflits(head %d→%d age %d)",
				name, in.count, f.msg.Src, f.msg.Dst, nw.now-f.arrivedAt)
		}
		for key, owner := range r.owner {
			if owner != nil {
				fmt.Fprintf(&b, " owner[%d]=%d→%d", key, owner.Src, owner.Dst)
			}
		}
		b.WriteByte('\n')
	}
	if len(busyRouters) > maxRouters {
		fmt.Fprintf(&b, "  … %d more occupied routers elided\n", len(busyRouters)-maxRouters)
	}
	return b.String()
}
