// Package netsim is a flit-level simulator of packet-switched, wormhole
// routed k-ary n-dimensional torus networks, mirroring the interconnect
// of the architecture in the paper's Section 3: a pair of unidirectional
// channels between neighboring switches in every dimension, single-cycle
// base delay through a switch, e-cube (dimension-ordered) routing, a
// moderate amount of buffering per switch input, and one flit crossing
// a channel per network cycle.
//
// Because minimal routing on torus rings is cyclic, each physical
// channel carries two virtual channels with the standard dateline
// discipline: a worm travels on VC0 within a ring until it crosses the
// wraparound edge (the dateline), after which it uses VC1. Combined
// with dimension-ordered routing this makes the network provably
// deadlock-free.
//
// The simulator is synchronous: Step advances every switch by one
// network cycle using a two-phase (decide, commit) update so results
// are independent of iteration order. Messages destined for their own
// source node bypass the network and deliver after a configurable local
// latency; they are excluded from network traffic statistics, matching
// the paper's convention that nodes never send network messages to
// themselves.
//
// Per-switch state lives in flat structure-of-arrays slices indexed by
// router, and Step iterates an active-router worklist instead of all N
// routers, so a mostly-idle fabric costs O(active switches) per cycle
// and an untouched switch costs no resident memory (large zeroed slices
// are backed by untouched pages). Both changes are behavior-preserving:
// see DESIGN.md §5i for the parity argument.
package netsim

import (
	"fmt"
	"math/bits"
	"slices"
	"strings"

	"locality/internal/stats"
	"locality/internal/topology"
)

// Message is one network packet. Callers set Src, Dst, Size and
// Payload; the network fills in the accounting fields.
type Message struct {
	Src, Dst int
	// Size is the message length in flits (8-bit channel flits in the
	// reference architecture). Must be ≥ 1.
	Size int
	// Payload is opaque to the network.
	Payload any

	// EnqueuedAt is when Send accepted the message (N-cycles).
	EnqueuedAt int64
	// InjectedAt is when the head flit entered the source switch.
	InjectedAt int64
	// DeliveredAt is when the tail flit reached the destination node.
	DeliveredAt int64
	// Hops is the number of switch-to-switch channels traversed.
	Hops int

	remaining int // flits not yet emitted by the injector
	curDim    int // dimension the worm is currently traveling (-1 before first hop)
	vcClass   int // 0 before the dateline in curDim, 1 after
}

// Latency returns the end-to-end message latency including source
// queueing, in network cycles.
func (m *Message) Latency() int64 { return m.DeliveredAt - m.EnqueuedAt }

// NetworkLatency returns the latency from first flit entering the
// switch fabric to tail delivery, excluding source queueing.
func (m *Message) NetworkLatency() int64 { return m.DeliveredAt - m.InjectedAt }

// flit is one channel-width unit of a message in flight.
type flit struct {
	msg       *Message
	seq       int   // 0-based flit index; 0 is the head
	arrivedAt int64 // cycle the flit entered its current buffer
}

func (f flit) isHead() bool { return f.seq == 0 }
func (f flit) isTail() bool { return f.seq == f.msg.Size-1 }

// fifo is a bounded flit queue (one switch input buffer). It is a value
// type so buffers pack into one flat slice per network; the ring
// storage is allocated lazily on first push, so the millions of
// never-touched buffers of a large mostly-idle fabric cost nothing.
// The depth is owned by the network and passed in where needed.
type fifo struct {
	buf   []flit
	head  int
	count int
}

func (q *fifo) full(depth int) bool { return q.count == depth }
func (q *fifo) empty() bool         { return q.count == 0 }

func (q *fifo) push(f flit, depth int) {
	if q.count == depth {
		panic("netsim: push to full buffer")
	}
	if q.buf == nil {
		q.buf = make([]flit, depth)
	}
	q.buf[(q.head+q.count)%len(q.buf)] = f
	q.count++
}

func (q *fifo) peek() flit {
	if q.empty() {
		panic("netsim: peek at empty buffer")
	}
	return q.buf[q.head]
}

func (q *fifo) pop() flit {
	f := q.peek()
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return f
}

// LinkFaultModel decides whether a directional physical channel is
// faulted at a given cycle. A faulted channel transfers no flits: the
// worm holding it stalls in place and ordinary wormhole backpressure
// propagates upstream, so no traffic is lost. Channels are identified
// as router·2n + port (see the port indexing above); queries are
// monotone in time per channel. A nil model means a fault-free fabric.
type LinkFaultModel interface {
	Down(channel int, now int64) bool
}

// Config parameterizes the network.
type Config struct {
	Topo *topology.Torus
	// BufferDepth is the per-virtual-channel flit buffer depth at each
	// switch input.
	BufferDepth int
	// LocalDelay is the delivery latency for src == dst messages,
	// which bypass the fabric (N-cycles). Defaults to 1 when zero.
	LocalDelay int
	// Faults, when non-nil, injects transient link faults (stalled
	// channels). Nil leaves the fabric behaviorally identical to a
	// fault-free build.
	Faults LinkFaultModel
}

// DeliveryFunc receives each message when its tail flit arrives.
type DeliveryFunc func(now int64, msg *Message)

// move is one committed flit transfer for the two-phase update.
type move struct {
	router  int
	input   int
	outKey  int
	release bool     // tail flit: release virtual output ownership
	acquire *Message // head flit granted the output this cycle
	newDim  int      // dimension entered by the acquiring head (fabric moves)
	crossed bool     // this hop crosses the dateline
	eject   bool
	dest    int // destination router for fabric moves
	destIn  int // destination input buffer index
}

// Network simulates the whole fabric.
//
// Port/buffer indexing at each router, for a topology with n dims:
//
//	directional physical ports: o ∈ [0, 2n), o = 2·dim + (dir<0 ? 1 : 0)
//	virtual input buffers:      o·2 + vc for vc ∈ {0, 1}
//	injection input buffer:     4n (single buffer, no VC)
//	virtual output keys:        o·2 + vc, ejection key 4n
//
// Router state is stored structure-of-arrays: per-key state for router
// v lives at index v·nin+key (nin = 4n+1 inputs/keys per router) and
// per-port state at v·ports+o. The flat slices are allocated once in
// New; because a fresh large slice is zeroed pages the OS has not
// materialized, memory residency tracks the routers actually touched.
type Network struct {
	cfg   Config
	topo  *topology.Torus
	dims  int
	k     int
	ports int // directional physical ports per router (2·dims)
	nin   int // input buffers / virtual output keys per router (2·ports+1)
	nodes int

	// in[v·nin+key] is router v's input buffer for key (lazy storage).
	in []fifo
	// owner[v·nin+key] is the message holding virtual output key, or nil.
	owner []*Message
	// ownerInput[v·nin+key] is the input buffer index feeding that worm.
	ownerInput []int32
	// lastGranted[v·nin+key] rotates arbitration among inputs for a key.
	lastGranted []int32
	// lastVC[v·ports+o] rotates the physical channel between its two VCs.
	lastVC []uint8

	// routerFlits[v] counts flits buffered across all of router v's
	// inputs, for O(1) occupancy checks.
	routerFlits []int32
	// occ[v] is a bitmask over router v's input buffers: bit idx is set
	// iff in[v·nin+idx] is non-empty. Two words cover every legal
	// topology (nin = 4n+1 ≤ 125 for n ≤ 31). decide consults it so a
	// router's cost tracks its occupied inputs, not nin².
	occ [][2]uint64
	// headReq is decide's per-router scratch: headReq[idx] is the
	// virtual output key requested by the arrived head flit at input
	// idx, or -1. Filled from occ at the top of each router's decide.
	headReq []int16

	// Active-router worklist: v is on it iff it holds buffered flits or
	// queued injections. Sorted ascending at the top of every Step so
	// iteration visits routers in exactly the order the dense sweep
	// did; activeDirty marks out-of-order appends made mid-cycle.
	activeIDs   []int32
	isActive    []bool
	activeDirty bool
	// forceDense pins every router to the worklist permanently,
	// restoring the pre-worklist dense sweep. Behavior is identical by
	// construction (idle routers decide nothing and mutate nothing);
	// differential tests and benchmarks use it as the reference.
	forceDense bool

	// downAt[ch] is now+1 for every channel observed down by this
	// cycle's fault sweep (the +1 makes the zero value "never"). Only
	// allocated when a fault model is installed.
	downAt []int64

	// moves is the decide/commit scratch buffer, reused across cycles.
	moves []move

	// injectQ[v] holds messages waiting to enter the fabric at node v.
	injectQ [][]*Message
	// queued counts messages across all injection queues (partially
	// injected included), kept so Quiesced is O(1).
	queued int
	local  []localEntry
	now    int64

	deliver DeliveryFunc

	// lastProgress is the most recent cycle on which any flit entered,
	// moved within, or left the fabric (or a local message delivered).
	// The deadlock watchdog compares it against Now when traffic is in
	// flight.
	lastProgress int64

	// Lifetime flit conservation counters (never reset): every flit
	// accepted into an injection buffer, and every flit ejected at a
	// destination. Check verifies injected == ejected + in-flight.
	flitsIn  int64
	flitsOut int64

	// Statistics (since the last ResetStats).
	statsSince     int64
	injected       stats.Counter
	deliveredCount stats.Counter
	flitHops       stats.Counter // flit-channel traversals (fabric only)
	faultStalls    stats.Counter // channel-cycles lost to link faults
	latency        stats.Mean    // end-to-end incl. source queueing
	netLatency     stats.Mean    // fabric-only latency
	hops           stats.Mean
	sizes          stats.Mean
}

type localEntry struct {
	msg *Message
	due int64
}

// New validates the configuration and builds an idle network.
func New(cfg Config) (*Network, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("netsim: nil topology")
	}
	if cfg.BufferDepth < 1 {
		return nil, fmt.Errorf("netsim: buffer depth %d, must be ≥ 1", cfg.BufferDepth)
	}
	if cfg.LocalDelay == 0 {
		cfg.LocalDelay = 1
	}
	if cfg.LocalDelay < 0 {
		return nil, fmt.Errorf("netsim: negative local delay %d", cfg.LocalDelay)
	}
	n := cfg.Topo.Nodes()
	dims := cfg.Topo.N()
	ports := 2 * dims
	nin := 2*ports + 1
	nw := &Network{
		cfg:         cfg,
		topo:        cfg.Topo,
		dims:        dims,
		k:           cfg.Topo.K(),
		ports:       ports,
		nin:         nin,
		nodes:       n,
		in:          make([]fifo, n*nin),
		owner:       make([]*Message, n*nin),
		ownerInput:  make([]int32, n*nin),
		lastGranted: make([]int32, n*nin),
		lastVC:      make([]uint8, n*ports),
		routerFlits: make([]int32, n),
		occ:         make([][2]uint64, n),
		headReq:     make([]int16, nin),
		isActive:    make([]bool, n),
		injectQ:     make([][]*Message, n),
	}
	if cfg.Faults != nil {
		nw.downAt = make([]int64, n*ports)
	}
	return nw, nil
}

// SetDelivery installs the delivery callback.
func (nw *Network) SetDelivery(fn DeliveryFunc) { nw.deliver = fn }

// Now returns the current network cycle.
func (nw *Network) Now() int64 { return nw.now }

// ejectKey is the virtual output key of the ejection port.
func (nw *Network) ejectKey() int { return 2 * nw.ports }

// injectIn is the input buffer index of the injection port.
func (nw *Network) injectIn() int { return 2 * nw.ports }

// setOcc marks input idx of router v occupied.
func (nw *Network) setOcc(v, idx int) {
	nw.occ[v][idx>>6] |= 1 << (idx & 63)
}

// clrOcc marks input idx of router v empty.
func (nw *Network) clrOcc(v, idx int) {
	nw.occ[v][idx>>6] &^= 1 << (idx & 63)
}

// activate puts router v on the worklist if it is not already there.
func (nw *Network) activate(v int) {
	if nw.isActive[v] {
		return
	}
	nw.isActive[v] = true
	if n := len(nw.activeIDs); n > 0 && nw.activeIDs[n-1] > int32(v) {
		nw.activeDirty = true
	}
	nw.activeIDs = append(nw.activeIDs, int32(v))
}

// forceDenseSweep marks every router permanently active, restoring the
// pre-worklist dense per-cycle sweep for differential tests and
// benchmark baselines. Simulated behavior is identical; only the
// per-cycle iteration cost changes.
func (nw *Network) forceDenseSweep() {
	nw.forceDense = true
	for v := 0; v < nw.nodes; v++ {
		nw.activate(v)
	}
}

// ActiveRouters returns the current size of the active-router worklist
// (routers holding buffered flits or queued injections). O(1).
func (nw *Network) ActiveRouters() int { return len(nw.activeIDs) }

// Send enqueues a message for injection at its source node. Messages
// with src == dst bypass the fabric and deliver after LocalDelay.
func (nw *Network) Send(msg *Message) error {
	if msg.Size < 1 {
		return fmt.Errorf("netsim: message size %d, must be ≥ 1", msg.Size)
	}
	if msg.Src < 0 || msg.Src >= nw.nodes || msg.Dst < 0 || msg.Dst >= nw.nodes {
		return fmt.Errorf("netsim: src %d or dst %d out of range [0,%d)", msg.Src, msg.Dst, nw.nodes)
	}
	msg.EnqueuedAt = nw.now
	msg.remaining = msg.Size
	msg.curDim = -1
	msg.vcClass = 0
	if msg.Src == msg.Dst {
		msg.InjectedAt = nw.now
		nw.local = append(nw.local, localEntry{msg: msg, due: nw.now + int64(nw.cfg.LocalDelay)})
		return nil
	}
	nw.injectQ[msg.Src] = append(nw.injectQ[msg.Src], msg)
	nw.queued++
	nw.activate(msg.Src)
	return nil
}

// outputPortFor returns the directional physical port the head flit
// requests at router v under e-cube routing (lowest dimension first,
// minimal direction, ties toward positive), or the ejection key when v
// is the destination.
func (nw *Network) outputPortFor(v, dst int) (port int, eject bool) {
	if v == dst {
		return 0, true
	}
	a, b := v, dst
	for dim := 0; dim < nw.dims; dim++ {
		ca, cb := a%nw.k, b%nw.k
		if ca != cb {
			d := ((cb-ca)%nw.k + nw.k) % nw.k
			switch {
			case 2*d < nw.k:
				return 2 * dim, false
			case 2*d > nw.k:
				return 2*dim + 1, false
			default:
				// Exactly halfway around the ring: both directions are
				// minimal. Split ties deterministically by the parity
				// of the current coordinate so neither direction's
				// channels carry systematically more load (coordinates
				// at a tie are uniform over the ring). The tie exists
				// only on the first hop in a dimension, so the route
				// stays consistent and any two messages between the
				// same endpoints take the same path.
				if ca%2 == 0 {
					return 2 * dim, false
				}
				return 2*dim + 1, false
			}
		}
		a /= nw.k
		b /= nw.k
	}
	return 0, true
}

// crossesDateline reports whether traversing port o out of router v
// crosses the ring's wraparound edge: coordinate k−1 → 0 in the
// positive direction, 0 → k−1 in the negative.
func (nw *Network) crossesDateline(v, o int) bool {
	dim := o / 2
	coord := v
	for i := 0; i < dim; i++ {
		coord /= nw.k
	}
	coord %= nw.k
	if o%2 == 0 {
		return coord == nw.k-1
	}
	return coord == 0
}

// vcFor returns the virtual channel a head flit must use on port o:
// VC0 when entering a new dimension, its accumulated class otherwise.
func vcFor(msg *Message, o int) int {
	if msg.curDim != o/2 {
		return 0
	}
	return msg.vcClass
}

// neighborFor returns the router on the far side of directional port o
// of router v.
func (nw *Network) neighborFor(v, o int) int {
	dim := o / 2
	dir := 1
	if o%2 == 1 {
		dir = -1
	}
	return nw.topo.Neighbor(v, dim, dir)
}

// Step advances the network one cycle.
func (nw *Network) Step() {
	if nw.activeDirty {
		slices.Sort(nw.activeIDs)
		nw.activeDirty = false
	}
	if nw.cfg.Faults != nil {
		nw.sweepFaults()
	}
	nw.stepInjection()
	nw.decide()
	nw.commit()
	nw.compactActive()
	nw.stepLocal()
	nw.now++
}

// Run advances the network by cycles steps.
func (nw *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		nw.Step()
	}
}

// sweepFaults queries every channel's fault state for this cycle,
// charging faultStalls for each down channel and stamping downAt so
// decide can consult fault state without re-querying the model. The
// sweep is deliberately dense — over all channels in ascending order,
// exactly like the pre-worklist decide loop — because fault accounting
// (FaultedChannelCycles) and the model's per-channel RNG advancement
// are defined over every channel-cycle, occupied or not. With faults
// enabled a cycle therefore costs O(channels); a fault-free fabric
// (the large-machine configuration) skips this entirely.
func (nw *Network) sweepFaults() {
	stamp := nw.now + 1 // +1 so the zero value of downAt means "never"
	channels := nw.nodes * nw.ports
	for ch := 0; ch < channels; ch++ {
		if nw.cfg.Faults.Down(ch, nw.now) {
			nw.faultStalls.Inc()
			nw.downAt[ch] = stamp
		}
	}
}

// stepInjection streams flits of queued messages into each node's
// injection buffer, one flit per cycle per node. Only active routers
// can hold queued messages (Send activates the source).
func (nw *Network) stepInjection() {
	for _, v32 := range nw.activeIDs {
		v := int(v32)
		q := nw.injectQ[v]
		if len(q) == 0 {
			continue
		}
		in := &nw.in[v*nw.nin+nw.injectIn()]
		if in.full(nw.cfg.BufferDepth) {
			continue
		}
		msg := q[0]
		seq := msg.Size - msg.remaining
		if seq == 0 {
			msg.InjectedAt = nw.now
			nw.injected.Inc()
			nw.sizes.Add(float64(msg.Size))
		}
		in.push(flit{msg: msg, seq: seq, arrivedAt: nw.now}, nw.cfg.BufferDepth)
		nw.setOcc(v, nw.injectIn())
		nw.routerFlits[v]++
		nw.flitsIn++
		nw.lastProgress = nw.now
		msg.remaining--
		if msg.remaining == 0 {
			// Nil the drained slot so the backing array does not keep
			// the delivered message reachable for the rest of the run.
			q[0] = nil
			nw.injectQ[v] = q[1:]
			nw.queued--
		}
	}
}

// decide computes at most one flit transfer per physical channel (and
// per ejection port) based on cycle-start state, appending to the
// reusable moves scratch buffer. Routers with no buffered flits can
// produce no transfer and mutate no arbitration state, so iterating
// the (sorted) worklist yields exactly the moves of a dense sweep, in
// the same order.
func (nw *Network) decide() {
	nw.moves = nw.moves[:0]
	for _, v32 := range nw.activeIDs {
		v := int(v32)
		if nw.routerFlits[v] == 0 {
			continue
		}
		base := v * nw.nin
		// Gather phase: peek each occupied input once, recording which
		// virtual output key its arrived head flit requests. A key can
		// grant a transfer this cycle only if some head requests it or
		// a worm already owns it, so the arbitration below skips every
		// other key without consulting any buffer — skipped keys would
		// have decided nothing and mutated nothing.
		for i := range nw.headReq {
			nw.headReq[i] = -1
		}
		var avail [2]uint64
		for w := 0; w < 2; w++ {
			m := nw.occ[v][w]
			for m != 0 {
				idx := w<<6 + bits.TrailingZeros64(m)
				m &= m - 1
				f := nw.in[base+idx].peek()
				if !f.isHead() || f.arrivedAt >= nw.now {
					continue
				}
				key := nw.requestKey(v, f.msg)
				nw.headReq[idx] = int16(key)
				avail[key>>6] |= 1 << (key & 63)
			}
		}
		for key := 0; key < nw.nin; key++ {
			if nw.owner[base+key] != nil {
				avail[key>>6] |= 1 << (key & 63)
			}
		}
		// Directional physical channels: arbitrate between the two VCs.
		for o := 0; o < nw.ports; o++ {
			if avail[(o*2)>>6]&(3<<((o*2)&63)) == 0 {
				// Neither VC of this port can grant. The two keys o·2
				// and o·2+1 share a mask word: o·2 is even, so its bit
				// position within the word is at most 62.
				continue
			}
			if nw.cfg.Faults != nil && nw.downAt[v*nw.ports+o] == nw.now+1 {
				// The channel is faulted this cycle: neither VC may
				// transfer a flit; worms stall in place.
				continue
			}
			firstVC := 1 - int(nw.lastVC[v*nw.ports+o])
			granted := false
			for attempt := 0; attempt < 2 && !granted; attempt++ {
				vc := (firstVC + attempt) % 2
				key := o*2 + vc
				if avail[key>>6]&(1<<(key&63)) == 0 {
					continue
				}
				if mv, ok := nw.decideVirtualOutput(v, key); ok {
					nw.moves = append(nw.moves, mv)
					nw.lastVC[v*nw.ports+o] = uint8(vc)
					granted = true
				}
			}
		}
		// Ejection port.
		ek := nw.ejectKey()
		if avail[ek>>6]&(1<<(ek&63)) != 0 {
			if mv, ok := nw.decideVirtualOutput(v, ek); ok {
				nw.moves = append(nw.moves, mv)
			}
		}
	}
}

// decideVirtualOutput picks the flit (if any) to send through virtual
// output key this cycle at router v.
func (nw *Network) decideVirtualOutput(v, key int) (move, bool) {
	base := v * nw.nin
	if owner := nw.owner[base+key]; owner != nil {
		input := int(nw.ownerInput[base+key])
		in := &nw.in[base+input]
		if in.empty() {
			return move{}, false
		}
		f := in.peek()
		if f.msg != owner || f.arrivedAt >= nw.now {
			return move{}, false
		}
		return nw.buildMove(v, input, key, f)
	}
	// Arbitrate among input buffers whose head flit requests this key,
	// consulting the gather phase's per-input request table instead of
	// re-peeking every buffer (same skip conditions, same round-robin
	// order).
	start := int(nw.lastGranted[base+key])
	for i := 1; i <= nw.nin; i++ {
		idx := (start + i) % nw.nin
		if nw.headReq[idx] != int16(key) {
			continue
		}
		f := nw.in[base+idx].peek()
		mv, ok := nw.buildMove(v, idx, key, f)
		if !ok {
			// The downstream buffer is full; no other input can use
			// this key more productively this cycle.
			return move{}, false
		}
		mv.acquire = f.msg
		nw.lastGranted[base+key] = int32(idx)
		return mv, true
	}
	return move{}, false
}

// requestKey returns the virtual output key the message's head flit
// requests at router v.
func (nw *Network) requestKey(v int, msg *Message) int {
	o, eject := nw.outputPortFor(v, msg.Dst)
	if eject {
		return nw.ejectKey()
	}
	return o*2 + vcFor(msg, o)
}

// buildMove checks downstream capacity for a candidate transfer.
func (nw *Network) buildMove(v, input, key int, f flit) (move, bool) {
	if key == nw.ejectKey() {
		// The node sinks one flit per cycle unconditionally.
		return move{router: v, input: input, outKey: key, release: f.isTail(), eject: true}, true
	}
	o := key / 2
	next := nw.neighborFor(v, o)
	if nw.in[next*nw.nin+key].full(nw.cfg.BufferDepth) {
		return move{}, false
	}
	return move{
		router:  v,
		input:   input,
		outKey:  key,
		release: f.isTail(),
		dest:    next,
		destIn:  key,
		newDim:  o / 2,
		crossed: nw.crossesDateline(v, o),
	}, true
}

// commit applies the decided transfers.
func (nw *Network) commit() {
	if len(nw.moves) > 0 {
		nw.lastProgress = nw.now
	}
	for i := range nw.moves {
		mv := &nw.moves[i]
		base := mv.router * nw.nin
		f := nw.in[base+mv.input].pop()
		if nw.in[base+mv.input].empty() {
			nw.clrOcc(mv.router, mv.input)
		}
		nw.routerFlits[mv.router]--
		if mv.acquire != nil {
			nw.owner[base+mv.outKey] = mv.acquire
			nw.ownerInput[base+mv.outKey] = int32(mv.input)
			if !mv.eject {
				// Update the worm's dateline state as its head
				// advances; body flits inherit the reserved path.
				if f.msg.curDim != mv.newDim {
					f.msg.curDim = mv.newDim
					f.msg.vcClass = 0
				}
				if mv.crossed {
					f.msg.vcClass = 1
				}
			}
		}
		if mv.release {
			nw.owner[base+mv.outKey] = nil
		}
		if mv.eject {
			nw.flitsOut++
			if f.isTail() {
				nw.completeDelivery(f.msg)
			}
			continue
		}
		if f.isHead() {
			f.msg.Hops++
		}
		nw.flitHops.Inc()
		f.arrivedAt = nw.now
		nw.in[mv.dest*nw.nin+mv.destIn].push(f, nw.cfg.BufferDepth)
		nw.setOcc(mv.dest, mv.destIn)
		nw.routerFlits[mv.dest]++
		// A flit arriving this cycle cannot move before the next one
		// (the arrivedAt >= now guard), so activating the destination
		// now — for the next cycle's worklist — is timing-exact.
		nw.activate(mv.dest)
	}
}

// compactActive drops drained routers from the worklist: a router with
// no buffered flits and no queued injections contributes nothing to
// any future cycle until traffic re-activates it. Its persistent
// arbitration rotors (lastGranted, lastVC) and any stretched-worm
// output ownership stay in the flat arrays, untouched, exactly as a
// dense sweep would leave them.
func (nw *Network) compactActive() {
	if nw.forceDense {
		return
	}
	kept := nw.activeIDs[:0]
	for _, v32 := range nw.activeIDs {
		v := int(v32)
		if nw.routerFlits[v] > 0 || len(nw.injectQ[v]) > 0 {
			kept = append(kept, v32)
		} else {
			nw.isActive[v] = false
		}
	}
	nw.activeIDs = kept
}

func (nw *Network) completeDelivery(msg *Message) {
	msg.DeliveredAt = nw.now
	nw.deliveredCount.Inc()
	nw.latency.Add(float64(msg.Latency()))
	nw.netLatency.Add(float64(msg.NetworkLatency()))
	nw.hops.Add(float64(msg.Hops))
	if nw.deliver != nil {
		nw.deliver(nw.now, msg)
	}
}

func (nw *Network) stepLocal() {
	if len(nw.local) == 0 {
		return
	}
	kept := nw.local[:0]
	for _, e := range nw.local {
		if e.due <= nw.now {
			e.msg.DeliveredAt = nw.now
			nw.lastProgress = nw.now
			if nw.deliver != nil {
				nw.deliver(nw.now, e.msg)
			}
		} else {
			kept = append(kept, e)
		}
	}
	nw.local = kept
}

// Quiesced reports whether no traffic remains anywhere in the network.
// O(1): queued covers the injection queues, the lifetime conservation
// counters cover every switch buffer, and local covers the bypass.
func (nw *Network) Quiesced() bool {
	return nw.queued == 0 && nw.flitsIn == nw.flitsOut && len(nw.local) == 0
}

// Stats is a snapshot of the network's aggregate measurements.
type Stats struct {
	// Injected counts network messages that entered the fabric
	// (src == dst messages are excluded).
	Injected int64
	// Delivered counts fabric messages whose tails reached their
	// destinations.
	Delivered int64
	// FlitHops counts flit-channel traversals within the fabric.
	FlitHops int64
	// AvgLatency is the mean end-to-end latency including source
	// queueing (N-cycles).
	AvgLatency float64
	// AvgNetLatency excludes source queueing.
	AvgNetLatency float64
	// AvgHops is the mean hop count per delivered message.
	AvgHops float64
	// AvgSize is the mean injected message size in flits.
	AvgSize float64
	// ChannelUtilization is the mean fraction of directional channels
	// busy per cycle so far.
	ChannelUtilization float64
	// FaultedChannelCycles counts channel-cycles lost to injected link
	// faults (zero in a fault-free run).
	FaultedChannelCycles int64
	// Cycles is the number of simulated cycles.
	Cycles int64
}

// Snapshot returns aggregate statistics accumulated since the last
// ResetStats (or construction).
func (nw *Network) Snapshot() Stats {
	s := Stats{
		Injected:             nw.injected.Value(),
		Delivered:            nw.deliveredCount.Value(),
		FlitHops:             nw.flitHops.Value(),
		AvgLatency:           nw.latency.Mean(),
		AvgNetLatency:        nw.netLatency.Mean(),
		AvgHops:              nw.hops.Mean(),
		AvgSize:              nw.sizes.Mean(),
		FaultedChannelCycles: nw.faultStalls.Value(),
		Cycles:               nw.now - nw.statsSince,
	}
	if s.Cycles > 0 {
		channels := float64(nw.topo.ChannelCount())
		s.ChannelUtilization = float64(s.FlitHops) / (float64(s.Cycles) * channels)
	}
	return s
}

// ResetStats zeroes the accumulated statistics without disturbing
// in-flight traffic, so a measurement window can exclude warmup.
// Messages in flight at the reset are attributed to the window in
// which they deliver.
func (nw *Network) ResetStats() {
	nw.statsSince = nw.now
	nw.injected = stats.Counter{}
	nw.deliveredCount = stats.Counter{}
	nw.flitHops = stats.Counter{}
	nw.faultStalls = stats.Counter{}
	nw.latency = stats.Mean{}
	nw.netLatency = stats.Mean{}
	nw.hops = stats.Mean{}
	nw.sizes = stats.Mean{}
}

// inFlightFlits counts flits currently buffered anywhere in the fabric
// (injection buffers included; queued-but-uninjected messages are not).
// O(active routers): inactive routers hold no flits by invariant.
func (nw *Network) inFlightFlits() int {
	total := 0
	for _, v := range nw.activeIDs {
		total += int(nw.routerFlits[v])
	}
	return total
}

// Check verifies the fabric's structural invariants: flit conservation
// (every flit ever accepted has either been ejected or is buffered in
// a switch), the queued-message counter, the per-router flit counts
// and input-occupancy masks, and the active-worklist invariant — the worklist holds exactly the
// routers with buffered flits or queued injections (every such router,
// no drained ones, no duplicates). Watchdog, fault, and restore code
// call this so no code path can silently leak flits or corrupt the
// worklist. O(N·nin), so not for per-cycle hot paths.
func (nw *Network) Check() error {
	var inFlight int64
	for v := 0; v < nw.nodes; v++ {
		sum := int32(0)
		var occ [2]uint64
		for key := 0; key < nw.nin; key++ {
			if c := nw.in[v*nw.nin+key].count; c > 0 {
				sum += int32(c)
				occ[key>>6] |= 1 << (key & 63)
			}
		}
		if sum != nw.routerFlits[v] {
			return fmt.Errorf("netsim: router %d flit count drifted at cycle %d: counter %d, buffers hold %d",
				v, nw.now, nw.routerFlits[v], sum)
		}
		if occ != nw.occ[v] {
			return fmt.Errorf("netsim: router %d input-occupancy mask drifted at cycle %d: mask %x, buffers %x",
				v, nw.now, nw.occ[v], occ)
		}
		occupied := sum > 0 || len(nw.injectQ[v]) > 0
		if occupied && !nw.isActive[v] {
			return fmt.Errorf("netsim: router %d holds traffic at cycle %d but is missing from the active worklist", v, nw.now)
		}
		if !occupied && nw.isActive[v] && !nw.forceDense {
			return fmt.Errorf("netsim: drained router %d left on the active worklist at cycle %d", v, nw.now)
		}
		inFlight += int64(sum)
	}
	if nw.flitsIn != nw.flitsOut+inFlight {
		return fmt.Errorf("netsim: flit conservation violated at cycle %d: injected %d != delivered %d + in-flight %d",
			nw.now, nw.flitsIn, nw.flitsOut, inFlight)
	}
	q := 0
	active := 0
	for v := 0; v < nw.nodes; v++ {
		q += len(nw.injectQ[v])
		if nw.isActive[v] {
			active++
		}
	}
	if q != nw.queued {
		return fmt.Errorf("netsim: queued-message count drifted at cycle %d: counter %d, queues hold %d",
			nw.now, nw.queued, q)
	}
	for _, v := range nw.activeIDs {
		if v < 0 || int(v) >= nw.nodes || !nw.isActive[v] {
			return fmt.Errorf("netsim: stale worklist entry %d at cycle %d", v, nw.now)
		}
	}
	if len(nw.activeIDs) != active {
		return fmt.Errorf("netsim: worklist holds %d entries but %d routers are marked active at cycle %d",
			len(nw.activeIDs), active, nw.now)
	}
	return nil
}

// Busy reports whether any traffic is anywhere in the network (the
// complement of Quiesced, for watchdog use).
func (nw *Network) Busy() bool { return !nw.Quiesced() }

// LastProgress returns the most recent cycle on which a flit entered,
// moved within, or left the fabric. A busy network whose LastProgress
// stays fixed is deadlocked (or fully fault-blocked).
func (nw *Network) LastProgress() int64 { return nw.lastProgress }

// DiagSnapshot renders a structured diagnostic of the fabric's current
// occupancy for stall reports: per-switch virtual-channel buffer
// occupancy, the worm holding each virtual output, and the age of the
// oldest buffered flit. Only non-empty switches are listed, capped to
// keep reports readable. O(active routers), not O(N).
func (nw *Network) DiagSnapshot() string {
	const maxRouters = 16
	var b strings.Builder
	fmt.Fprintf(&b, "network @ N-cycle %d: %d flits in flight, last progress at %d\n",
		nw.now, nw.inFlightFlits(), nw.lastProgress)
	var busyRouters []int
	for _, v32 := range nw.activeIDs {
		v := int(v32)
		if nw.routerFlits[v] > 0 || len(nw.injectQ[v]) > 0 {
			busyRouters = append(busyRouters, v)
		}
	}
	slices.Sort(busyRouters)
	shown := busyRouters
	if len(shown) > maxRouters {
		shown = shown[:maxRouters]
	}
	for _, v := range shown {
		base := v * nw.nin
		fmt.Fprintf(&b, "  router %d (%v):", v, nw.topo.Coords(v))
		if q := len(nw.injectQ[v]); q > 0 {
			fmt.Fprintf(&b, " injectQ=%d", q)
		}
		for key := 0; key < nw.nin; key++ {
			in := &nw.in[base+key]
			if in.empty() {
				continue
			}
			f := in.peek()
			name := "inject"
			if key < 2*nw.ports {
				name = fmt.Sprintf("dim%d%svc%d", key/4, map[bool]string{true: "+", false: "-"}[(key/2)%2 == 0], key%2)
			}
			fmt.Fprintf(&b, " %s=%dflits(head %d→%d age %d)",
				name, in.count, f.msg.Src, f.msg.Dst, nw.now-f.arrivedAt)
		}
		for key := 0; key < nw.nin; key++ {
			if owner := nw.owner[base+key]; owner != nil {
				fmt.Fprintf(&b, " owner[%d]=%d→%d", key, owner.Src, owner.Dst)
			}
		}
		b.WriteByte('\n')
	}
	if len(busyRouters) > maxRouters {
		fmt.Fprintf(&b, "  … %d more occupied routers elided\n", len(busyRouters)-maxRouters)
	}
	return b.String()
}
