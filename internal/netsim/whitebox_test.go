package netsim

import (
	"testing"

	"locality/internal/topology"
)

// White-box tests for the routing internals: virtual-channel dateline
// discipline and minimal-direction tie balancing.

func TestCrossesDateline(t *testing.T) {
	nw := newNet(t, 8, 2, 4)
	tests := []struct {
		coords []int
		port   int // 2·dim + (dir<0 ? 1 : 0)
		want   bool
	}{
		{[]int{7, 0}, 0, true},  // +x from x=7 wraps
		{[]int{6, 0}, 0, false}, // +x from x=6 does not
		{[]int{0, 0}, 1, true},  // −x from x=0 wraps
		{[]int{1, 0}, 1, false},
		{[]int{0, 7}, 2, true},  // +y from y=7 wraps
		{[]int{0, 7}, 0, false}, // +x unaffected by y coordinate
		{[]int{3, 0}, 3, true},  // −y from y=0 wraps
	}
	tor := topology.MustNew(8, 2)
	for _, tc := range tests {
		v := tor.ID(tc.coords)
		if got := nw.crossesDateline(v, tc.port); got != tc.want {
			t.Errorf("crossesDateline(%v, port %d) = %v, want %v", tc.coords, tc.port, got, tc.want)
		}
	}
}

func TestVCForResetsAcrossDimensions(t *testing.T) {
	msg := &Message{curDim: 0, vcClass: 1}
	if vc := vcFor(msg, 0); vc != 1 {
		t.Errorf("same dimension should keep VC class: got %d", vc)
	}
	if vc := vcFor(msg, 2); vc != 0 {
		t.Errorf("new dimension should reset to VC0: got %d", vc)
	}
	fresh := &Message{curDim: -1}
	if vc := vcFor(fresh, 0); vc != 0 {
		t.Errorf("first hop should use VC0: got %d", vc)
	}
}

func TestWormSwitchesToVC1AfterDateline(t *testing.T) {
	// A message from x=6 to x=1 travels +x through the wrap edge:
	// hops 6→7 (VC0), 7→0 (VC0, crossing), 0→1 (VC1).
	nw := newNet(t, 8, 1, 4)
	var delivered *Message
	nw.SetDelivery(func(now int64, m *Message) { delivered = m })
	if err := nw.Send(&Message{Src: 6, Dst: 1, Size: 4}); err != nil {
		t.Fatal(err)
	}
	drain(t, nw, 1000)
	if delivered == nil {
		t.Fatal("message lost")
	}
	if delivered.Hops != 3 {
		t.Fatalf("hops = %d, want 3", delivered.Hops)
	}
	if delivered.vcClass != 1 {
		t.Errorf("worm should end on VC1 after crossing the dateline, got class %d", delivered.vcClass)
	}
}

func TestWormStaysOnVC0WithoutWrap(t *testing.T) {
	nw := newNet(t, 8, 1, 4)
	var delivered *Message
	nw.SetDelivery(func(now int64, m *Message) { delivered = m })
	if err := nw.Send(&Message{Src: 1, Dst: 4, Size: 4}); err != nil {
		t.Fatal(err)
	}
	drain(t, nw, 1000)
	if delivered.vcClass != 0 {
		t.Errorf("worm without dateline crossing should stay on VC0, got class %d", delivered.vcClass)
	}
}

func TestHalfwayTieBalanced(t *testing.T) {
	// On an 8-ring, destinations exactly 4 away are reachable both
	// ways; the tie-break must send about half of the sources each
	// direction so channel load stays symmetric.
	nw := newNet(t, 8, 1, 4)
	pos, neg := 0, 0
	for src := 0; src < 8; src++ {
		dst := (src + 4) % 8
		port, eject := nw.outputPortFor(src, dst)
		if eject {
			t.Fatalf("src %d dst %d should not eject", src, dst)
		}
		switch port {
		case 0:
			pos++
		case 1:
			neg++
		default:
			t.Fatalf("unexpected port %d", port)
		}
	}
	if pos != 4 || neg != 4 {
		t.Errorf("tie split = %d positive / %d negative, want 4/4", pos, neg)
	}
}

func TestTieRouteConsistentPerPair(t *testing.T) {
	// All messages between the same endpoints must take the same route
	// (the coherence protocol relies on per-pair FIFO ordering).
	nw := newNet(t, 8, 2, 4)
	var hops []int
	nw.SetDelivery(func(now int64, m *Message) { hops = append(hops, m.Hops) })
	for i := 0; i < 5; i++ {
		if err := nw.Send(&Message{Src: 3, Dst: (3 + 4) % 8, Size: 6}); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, nw, 10000)
	for _, h := range hops {
		if h != 4 {
			t.Errorf("hop count %d, want 4 (minimal both ways)", h)
		}
	}
}

func TestEjectionSharedFairly(t *testing.T) {
	// Two sources flood one destination; both must make progress (the
	// ejection port is arbitrated, not captured).
	nw := newNet(t, 8, 2, 4)
	bySrc := map[int]int{}
	nw.SetDelivery(func(now int64, m *Message) { bySrc[m.Src]++ })
	for i := 0; i < 30; i++ {
		if err := nw.Send(&Message{Src: 1, Dst: 0, Size: 8}); err != nil {
			t.Fatal(err)
		}
		if err := nw.Send(&Message{Src: 8, Dst: 0, Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, nw, 100000)
	if bySrc[1] != 30 || bySrc[8] != 30 {
		t.Fatalf("deliveries by source = %v, want 30 each", bySrc)
	}
}

func TestInjectionBackpressure(t *testing.T) {
	// A node can queue arbitrarily many messages, but the fabric
	// accepts only one flit per cycle: the send queue drains at channel
	// rate and nothing is lost.
	nw := newNet(t, 4, 2, 2)
	count := 0
	nw.SetDelivery(func(now int64, m *Message) { count++ })
	const n = 50
	for i := 0; i < n; i++ {
		if err := nw.Send(&Message{Src: 0, Dst: 1, Size: 12}); err != nil {
			t.Fatal(err)
		}
	}
	// 50 messages × 12 flits on one channel need ≥ 600 cycles.
	nw.Run(550)
	if nw.Quiesced() {
		t.Error("fabric drained implausibly fast for a single channel")
	}
	drain(t, nw, 10000)
	if count != n {
		t.Errorf("delivered %d, want %d", count, n)
	}
}
