package netsim

import (
	"math"
	"math/rand"
	"testing"

	"locality/internal/topology"
)

func newNet(t *testing.T, k, n, depth int) *Network {
	t.Helper()
	nw, err := New(Config{Topo: topology.MustNew(k, n), BufferDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// drain runs the network until quiescent or the cycle budget expires.
func drain(t *testing.T, nw *Network, budget int64) {
	t.Helper()
	for i := int64(0); i < budget; i++ {
		if nw.Quiesced() {
			return
		}
		nw.Step()
	}
	if !nw.Quiesced() {
		t.Fatalf("network did not quiesce within %d cycles (deadlock?)", budget)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Topo: nil, BufferDepth: 4}); err == nil {
		t.Error("nil topology should error")
	}
	if _, err := New(Config{Topo: topology.MustNew(4, 2), BufferDepth: 0}); err == nil {
		t.Error("zero buffer depth should error")
	}
	if _, err := New(Config{Topo: topology.MustNew(4, 2), BufferDepth: 4, LocalDelay: -1}); err == nil {
		t.Error("negative local delay should error")
	}
}

func TestSendValidation(t *testing.T) {
	nw := newNet(t, 4, 2, 4)
	if err := nw.Send(&Message{Src: 0, Dst: 1, Size: 0}); err == nil {
		t.Error("zero-size message should error")
	}
	if err := nw.Send(&Message{Src: -1, Dst: 1, Size: 1}); err == nil {
		t.Error("negative src should error")
	}
	if err := nw.Send(&Message{Src: 0, Dst: 99, Size: 1}); err == nil {
		t.Error("out-of-range dst should error")
	}
}

func TestSingleMessageLatency(t *testing.T) {
	// One message in an idle network: head takes 1 cycle into the
	// injection buffer, 1 cycle per hop, 1 cycle to eject, then the
	// remaining B−1 flits drain one per cycle. The model's zero-load
	// latency is hops·Th + B with Th = 1; the simulator adds a couple
	// of cycles of injection/ejection pipelining.
	nw := newNet(t, 8, 2, 4)
	var delivered *Message
	nw.SetDelivery(func(now int64, m *Message) { delivered = m })
	msg := &Message{Src: 0, Dst: 3, Size: 12} // 3 hops in dimension 0
	if err := nw.Send(msg); err != nil {
		t.Fatal(err)
	}
	drain(t, nw, 1000)
	if delivered == nil {
		t.Fatal("message not delivered")
	}
	if delivered.Hops != 3 {
		t.Errorf("Hops = %d, want 3", delivered.Hops)
	}
	lat := delivered.Latency()
	ideal := int64(3 + 12) // hops + size
	if lat < ideal || lat > ideal+4 {
		t.Errorf("latency = %d, want within [%d, %d]", lat, ideal, ideal+4)
	}
}

func TestWraparoundRouteIsMinimal(t *testing.T) {
	nw := newNet(t, 8, 2, 4)
	var delivered *Message
	nw.SetDelivery(func(now int64, m *Message) { delivered = m })
	// 0 → 7 in dimension 0 is one hop backward across the wrap edge.
	if err := nw.Send(&Message{Src: 0, Dst: 7, Size: 4}); err != nil {
		t.Fatal(err)
	}
	drain(t, nw, 1000)
	if delivered.Hops != 1 {
		t.Errorf("wraparound Hops = %d, want 1", delivered.Hops)
	}
}

func TestLocalMessageBypassesFabric(t *testing.T) {
	nw := newNet(t, 4, 2, 4)
	var delivered *Message
	nw.SetDelivery(func(now int64, m *Message) { delivered = m })
	if err := nw.Send(&Message{Src: 5, Dst: 5, Size: 24}); err != nil {
		t.Fatal(err)
	}
	drain(t, nw, 100)
	if delivered == nil {
		t.Fatal("local message not delivered")
	}
	if delivered.Hops != 0 {
		t.Errorf("local Hops = %d, want 0", delivered.Hops)
	}
	if got := delivered.Latency(); got != 1 {
		t.Errorf("local latency = %d, want LocalDelay = 1", got)
	}
	if s := nw.Snapshot(); s.Injected != 0 || s.Delivered != 0 {
		t.Errorf("local message counted as network traffic: %+v", s)
	}
}

func TestAllMessagesDelivered(t *testing.T) {
	nw := newNet(t, 8, 2, 4)
	deliveredBy := map[*Message]bool{}
	nw.SetDelivery(func(now int64, m *Message) {
		if deliveredBy[m] {
			t.Error("message delivered twice")
		}
		deliveredBy[m] = true
	})
	rng := rand.New(rand.NewSource(1))
	var sent []*Message
	for i := 0; i < 500; i++ {
		src, dst := rng.Intn(64), rng.Intn(64)
		if src == dst {
			continue
		}
		m := &Message{Src: src, Dst: dst, Size: 1 + rng.Intn(24)}
		if err := nw.Send(m); err != nil {
			t.Fatal(err)
		}
		sent = append(sent, m)
	}
	drain(t, nw, 100000)
	for _, m := range sent {
		if !deliveredBy[m] {
			t.Errorf("message %d->%d lost", m.Src, m.Dst)
		}
	}
	s := nw.Snapshot()
	if s.Injected != int64(len(sent)) || s.Delivered != int64(len(sent)) {
		t.Errorf("injected/delivered = %d/%d, want %d", s.Injected, s.Delivered, len(sent))
	}
}

func TestHopsMatchTopologyDistance(t *testing.T) {
	tor := topology.MustNew(8, 2)
	nw, err := New(Config{Topo: tor, BufferDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	hops := map[*Message]int{}
	nw.SetDelivery(func(now int64, m *Message) { hops[m] = m.Hops })
	rng := rand.New(rand.NewSource(2))
	var sent []*Message
	for i := 0; i < 200; i++ {
		src, dst := rng.Intn(64), rng.Intn(64)
		if src == dst {
			continue
		}
		m := &Message{Src: src, Dst: dst, Size: 6}
		if err := nw.Send(m); err != nil {
			t.Fatal(err)
		}
		sent = append(sent, m)
	}
	drain(t, nw, 100000)
	for _, m := range sent {
		if hops[m] != tor.Distance(m.Src, m.Dst) {
			t.Errorf("%d->%d: hops %d != distance %d", m.Src, m.Dst, hops[m], tor.Distance(m.Src, m.Dst))
		}
	}
}

func TestFlitConservation(t *testing.T) {
	nw := newNet(t, 8, 2, 2)
	var deliveredFlits int64
	nw.SetDelivery(func(now int64, m *Message) { deliveredFlits += int64(m.Size) })
	rng := rand.New(rand.NewSource(3))
	var sentFlits, expectedFlitHops int64
	tor := topology.MustNew(8, 2)
	for i := 0; i < 300; i++ {
		src, dst := rng.Intn(64), rng.Intn(64)
		if src == dst {
			continue
		}
		size := 1 + rng.Intn(12)
		m := &Message{Src: src, Dst: dst, Size: size}
		if err := nw.Send(m); err != nil {
			t.Fatal(err)
		}
		sentFlits += int64(size)
		expectedFlitHops += int64(size * tor.Distance(src, dst))
	}
	drain(t, nw, 200000)
	if deliveredFlits != sentFlits {
		t.Errorf("delivered %d flits, sent %d", deliveredFlits, sentFlits)
	}
	if s := nw.Snapshot(); s.FlitHops != expectedFlitHops {
		t.Errorf("FlitHops = %d, want %d (minimal routes)", s.FlitHops, expectedFlitHops)
	}
}

func TestHeavyLoadNoDeadlock(t *testing.T) {
	// Saturate the wrap rings: every node sends long messages halfway
	// around its row, the classic torus deadlock pattern that the
	// dateline VC discipline must break.
	nw := newNet(t, 8, 1, 2)
	count := 0
	nw.SetDelivery(func(now int64, m *Message) { count++ })
	for round := 0; round < 20; round++ {
		for src := 0; src < 8; src++ {
			dst := (src + 4) % 8
			if err := nw.Send(&Message{Src: src, Dst: dst, Size: 24}); err != nil {
				t.Fatal(err)
			}
		}
	}
	drain(t, nw, 200000)
	if count != 160 {
		t.Errorf("delivered %d messages, want 160", count)
	}
}

func TestAdversarialRingTrafficNoDeadlock(t *testing.T) {
	// All nodes flood in the same ring direction with messages that
	// wrap the dateline; without VCs this livelocks/deadlocks.
	nw := newNet(t, 4, 2, 1)
	delivered := 0
	nw.SetDelivery(func(now int64, m *Message) { delivered++ })
	rng := rand.New(rand.NewSource(7))
	sent := 0
	for i := 0; i < 2000; i++ {
		src := rng.Intn(16)
		dst := rng.Intn(16)
		if src == dst {
			continue
		}
		if err := nw.Send(&Message{Src: src, Dst: dst, Size: 8}); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	drain(t, nw, 1000000)
	if delivered != sent {
		t.Errorf("delivered %d, want %d", delivered, sent)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	// Inject uniform random traffic at two rates; the loaded network
	// must exhibit higher average latency.
	latencyAt := func(gap int64) float64 {
		nw := newNet(t, 8, 2, 4)
		nw.SetDelivery(func(now int64, m *Message) {})
		rng := rand.New(rand.NewSource(9))
		var cycle int64
		for cycle = 0; cycle < 20000; cycle++ {
			if cycle%gap == 0 {
				for v := 0; v < 64; v++ {
					dst := rng.Intn(64)
					if dst == v {
						continue
					}
					if err := nw.Send(&Message{Src: v, Dst: dst, Size: 12}); err != nil {
						t.Fatal(err)
					}
				}
			}
			nw.Step()
		}
		drain(t, nw, 1000000)
		return nw.Snapshot().AvgLatency
	}
	light := latencyAt(400)
	heavy := latencyAt(60)
	if heavy <= light {
		t.Errorf("latency under load (%g) should exceed light-load latency (%g)", heavy, light)
	}
}

func TestSnapshotUtilization(t *testing.T) {
	nw := newNet(t, 4, 2, 4)
	nw.SetDelivery(func(now int64, m *Message) {})
	if err := nw.Send(&Message{Src: 0, Dst: 2, Size: 10}); err != nil {
		t.Fatal(err)
	}
	drain(t, nw, 10000)
	s := nw.Snapshot()
	if s.ChannelUtilization <= 0 || s.ChannelUtilization >= 1 {
		t.Errorf("utilization = %g, want in (0,1)", s.ChannelUtilization)
	}
	// 10 flits over 2 hops = 20 flit-hops.
	if s.FlitHops != 20 {
		t.Errorf("FlitHops = %d, want 20", s.FlitHops)
	}
	if s.AvgSize != 10 {
		t.Errorf("AvgSize = %g, want 10", s.AvgSize)
	}
	if math.Abs(s.AvgHops-2) > 1e-12 {
		t.Errorf("AvgHops = %g, want 2", s.AvgHops)
	}
}

func TestWormholeOrdering(t *testing.T) {
	// Two messages from the same source to the same destination must
	// arrive in order (single injection queue, deterministic routes).
	nw := newNet(t, 8, 2, 4)
	var order []int
	nw.SetDelivery(func(now int64, m *Message) { order = append(order, m.Payload.(int)) })
	for i := 0; i < 10; i++ {
		if err := nw.Send(&Message{Src: 0, Dst: 5, Size: 6, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, nw, 10000)
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order %v, want ascending", order)
		}
	}
}

func TestQuiescedInitially(t *testing.T) {
	nw := newNet(t, 4, 2, 4)
	if !nw.Quiesced() {
		t.Error("fresh network should be quiescent")
	}
	if err := nw.Send(&Message{Src: 0, Dst: 1, Size: 2}); err != nil {
		t.Fatal(err)
	}
	if nw.Quiesced() {
		t.Error("network with queued traffic should not be quiescent")
	}
}

func TestFIFO(t *testing.T) {
	const depth = 2
	var q fifo
	if !q.empty() || q.full(depth) {
		t.Error("fresh fifo state wrong")
	}
	m := &Message{Size: 3}
	q.push(flit{msg: m, seq: 0}, depth)
	q.push(flit{msg: m, seq: 1}, depth)
	if !q.full(depth) {
		t.Error("fifo should be full")
	}
	if f := q.pop(); f.seq != 0 {
		t.Errorf("pop seq = %d, want 0", f.seq)
	}
	q.push(flit{msg: m, seq: 2}, depth) // wraps the ring buffer
	if f := q.pop(); f.seq != 1 {
		t.Errorf("pop seq = %d, want 1", f.seq)
	}
	if f := q.pop(); f.seq != 2 {
		t.Errorf("pop seq = %d, want 2", f.seq)
	}
	if !q.empty() {
		t.Error("fifo should be empty")
	}
}

func TestFIFOPanics(t *testing.T) {
	var q fifo
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pop of empty fifo should panic")
			}
		}()
		q.pop()
	}()
	q.push(flit{}, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("push to full fifo should panic")
			}
		}()
		q.push(flit{}, 1)
	}()
}
