package netsim

import (
	"fmt"

	"locality/internal/stats"
)

// This file serializes the fabric. A Message is shared by pointer
// between its buffered flits, virtual-output ownerships, injection
// queue slot, and local-bypass entry; the checkpoint flattens every
// distinct message into an indexed table (enumeration order: router
// buffers, then owners, then injection queues, then local bypass — a
// deterministic order, so encoding is canonical) and references it by
// index. Payloads ride along as opaque values; the checkpoint codec is
// responsible for encoding them.
//
// The encoding is sparse: only routers with non-zero state (buffered
// flits, held outputs, or non-zero arbitration rotors) and non-empty
// injection queues appear, each tagged with its index, in strictly
// ascending order. A large mostly-idle fabric therefore checkpoints in
// O(touched routers) space and the encoding is canonical — a restored
// network re-encodes to the identical state. Unobservable residue is
// canonicalized away: OwnerInput is recorded as 0 for free outputs
// (the field is only read while the output is held).

// MessageState is one in-flight message's serialized state.
type MessageState struct {
	Src, Dst, Size                      int
	Payload                             any
	EnqueuedAt, InjectedAt, DeliveredAt int64
	Hops                                int
	Remaining                           int
	CurDim                              int
	VCClass                             int
}

// FlitState is one buffered flit; Msg indexes the message table.
type FlitState struct {
	Msg       int
	Seq       int
	ArrivedAt int64
}

// RouterState is one non-zero switch's serialized state, tagged with
// its router index. Inputs hold each buffer's flits in pop order.
type RouterState struct {
	Index       int
	Inputs      [][]FlitState
	Owner       []int // message index, -1 when free
	OwnerInput  []int // 0 when the output is free (canonical form)
	LastGranted []int
	LastVC      []int
}

// InjectQState is one node's non-empty injection queue.
type InjectQState struct {
	Node int
	Msgs []int // message indices in queue order
}

// LocalState is one local-bypass delivery in flight.
type LocalState struct {
	Msg int
	Due int64
}

// CheckpointState is the network's complete serializable state.
// Routers and InjectQ are sparse: strictly ascending indices, zero
// state omitted.
type CheckpointState struct {
	Messages []MessageState
	Routers  []RouterState
	InjectQ  []InjectQState
	Local    []LocalState

	Now          int64
	LastProgress int64
	FlitsIn      int64
	FlitsOut     int64

	StatsSince  int64
	Injected    int64
	Delivered   int64
	FlitHops    int64
	FaultStalls int64
	Latency     stats.MeanState
	NetLatency  stats.MeanState
	Hops        stats.MeanState
	Sizes       stats.MeanState
}

// routerZero reports whether router v carries no serializable state:
// no buffered flits, no held virtual outputs, and all arbitration
// rotors at their initial values.
func (nw *Network) routerZero(v int) bool {
	if nw.routerFlits[v] != 0 {
		return false
	}
	base := v * nw.nin
	for key := 0; key < nw.nin; key++ {
		if nw.owner[base+key] != nil || nw.lastGranted[base+key] != 0 {
			return false
		}
	}
	for o := 0; o < nw.ports; o++ {
		if nw.lastVC[v*nw.ports+o] != 0 {
			return false
		}
	}
	return true
}

// Checkpoint captures the network's current state.
func (nw *Network) Checkpoint() CheckpointState {
	index := make(map[*Message]int)
	var msgs []MessageState
	ref := func(m *Message) int {
		if i, ok := index[m]; ok {
			return i
		}
		i := len(msgs)
		index[m] = i
		msgs = append(msgs, MessageState{
			Src: m.Src, Dst: m.Dst, Size: m.Size,
			Payload:     m.Payload,
			EnqueuedAt:  m.EnqueuedAt,
			InjectedAt:  m.InjectedAt,
			DeliveredAt: m.DeliveredAt,
			Hops:        m.Hops,
			Remaining:   m.remaining,
			CurDim:      m.curDim,
			VCClass:     m.vcClass,
		})
		return i
	}
	s := CheckpointState{
		Now:          nw.now,
		LastProgress: nw.lastProgress,
		FlitsIn:      nw.flitsIn,
		FlitsOut:     nw.flitsOut,
		StatsSince:   nw.statsSince,
		Injected:     nw.injected.Value(),
		Delivered:    nw.deliveredCount.Value(),
		FlitHops:     nw.flitHops.Value(),
		FaultStalls:  nw.faultStalls.Value(),
		Latency:      nw.latency.State(),
		NetLatency:   nw.netLatency.State(),
		Hops:         nw.hops.State(),
		Sizes:        nw.sizes.State(),
	}
	for v := 0; v < nw.nodes; v++ {
		if nw.routerZero(v) {
			continue
		}
		base := v * nw.nin
		rs := RouterState{
			Index:       v,
			Inputs:      make([][]FlitState, nw.nin),
			Owner:       make([]int, nw.nin),
			OwnerInput:  make([]int, nw.nin),
			LastGranted: make([]int, nw.nin),
			LastVC:      make([]int, nw.ports),
		}
		for key := 0; key < nw.nin; key++ {
			in := &nw.in[base+key]
			var flits []FlitState // nil when empty, matching the codec
			for n := 0; n < in.count; n++ {
				f := in.buf[(in.head+n)%len(in.buf)]
				flits = append(flits, FlitState{Msg: ref(f.msg), Seq: f.seq, ArrivedAt: f.arrivedAt})
			}
			rs.Inputs[key] = flits
		}
		for key := 0; key < nw.nin; key++ {
			if owner := nw.owner[base+key]; owner != nil {
				rs.Owner[key] = ref(owner)
				rs.OwnerInput[key] = int(nw.ownerInput[base+key])
			} else {
				rs.Owner[key] = -1
			}
			rs.LastGranted[key] = int(nw.lastGranted[base+key])
		}
		for o := 0; o < nw.ports; o++ {
			rs.LastVC[o] = int(nw.lastVC[v*nw.ports+o])
		}
		s.Routers = append(s.Routers, rs)
	}
	for v, q := range nw.injectQ {
		if len(q) == 0 {
			continue
		}
		idxs := make([]int, len(q))
		for i, m := range q {
			idxs[i] = ref(m)
		}
		s.InjectQ = append(s.InjectQ, InjectQState{Node: v, Msgs: idxs})
	}
	s.Local = make([]LocalState, len(nw.local))
	for i, e := range nw.local {
		s.Local[i] = LocalState{Msg: ref(e.msg), Due: e.due}
	}
	s.Messages = msgs
	return s
}

// Restore overwrites the network with a previously captured state. The
// network must have been built with the same configuration; the
// delivery callback and fault model stay as wired. Every router and
// queue absent from the sparse state is reset to zero, and the active
// worklist is rebuilt from the restored occupancy.
func (nw *Network) Restore(s CheckpointState) error {
	nodes := nw.nodes
	for i, ms := range s.Messages {
		if ms.Src < 0 || ms.Src >= nodes || ms.Dst < 0 || ms.Dst >= nodes {
			return fmt.Errorf("netsim: message %d endpoints %d→%d out of range", i, ms.Src, ms.Dst)
		}
		if ms.Size < 1 || ms.Remaining < 0 || ms.Remaining > ms.Size {
			return fmt.Errorf("netsim: message %d size %d / remaining %d invalid", i, ms.Size, ms.Remaining)
		}
		if ms.CurDim < -1 || ms.CurDim >= nw.dims || ms.VCClass < 0 || ms.VCClass > 1 {
			return fmt.Errorf("netsim: message %d routing state invalid", i)
		}
	}
	checkRef := func(what string, idx int) error {
		if idx < 0 || idx >= len(s.Messages) {
			return fmt.Errorf("netsim: %s references message %d of %d", what, idx, len(s.Messages))
		}
		return nil
	}
	nin := nw.nin
	prev := -1
	for _, rs := range s.Routers {
		if rs.Index <= prev || rs.Index >= nodes {
			return fmt.Errorf("netsim: router index %d out of order or range (previous %d, nodes %d)", rs.Index, prev, nodes)
		}
		prev = rs.Index
		v := rs.Index
		if len(rs.Inputs) != nin || len(rs.Owner) != nin || len(rs.OwnerInput) != nin || len(rs.LastGranted) != nin {
			return fmt.Errorf("netsim: router %d checkpoint geometry mismatch", v)
		}
		if len(rs.LastVC) != nw.ports {
			return fmt.Errorf("netsim: router %d has %d VC rotors, want %d", v, len(rs.LastVC), nw.ports)
		}
		for i, flits := range rs.Inputs {
			if len(flits) > nw.cfg.BufferDepth {
				return fmt.Errorf("netsim: router %d input %d holds %d flits, depth is %d", v, i, len(flits), nw.cfg.BufferDepth)
			}
			for _, f := range flits {
				if err := checkRef("buffered flit", f.Msg); err != nil {
					return err
				}
				if f.Seq < 0 || f.Seq >= s.Messages[f.Msg].Size {
					return fmt.Errorf("netsim: flit sequence %d outside message of %d flits", f.Seq, s.Messages[f.Msg].Size)
				}
			}
		}
		for i, owner := range rs.Owner {
			if owner != -1 {
				if err := checkRef("output owner", owner); err != nil {
					return err
				}
			}
			if rs.OwnerInput[i] < 0 || rs.OwnerInput[i] >= nin {
				return fmt.Errorf("netsim: router %d owner input %d out of range", v, rs.OwnerInput[i])
			}
			if rs.LastGranted[i] < 0 || rs.LastGranted[i] >= nin {
				return fmt.Errorf("netsim: router %d arbitration rotor %d out of range", v, rs.LastGranted[i])
			}
		}
		for o, vc := range rs.LastVC {
			if vc < 0 || vc > 1 {
				return fmt.Errorf("netsim: router %d port %d VC rotor %d invalid", v, o, vc)
			}
		}
	}
	prev = -1
	for _, qs := range s.InjectQ {
		if qs.Node <= prev || qs.Node >= nodes {
			return fmt.Errorf("netsim: injection queue node %d out of order or range (previous %d, nodes %d)", qs.Node, prev, nodes)
		}
		prev = qs.Node
		if len(qs.Msgs) == 0 {
			return fmt.Errorf("netsim: empty injection queue entry for node %d (must be omitted)", qs.Node)
		}
		for _, idx := range qs.Msgs {
			if err := checkRef(fmt.Sprintf("injection queue %d", qs.Node), idx); err != nil {
				return err
			}
		}
	}
	for _, e := range s.Local {
		if err := checkRef("local delivery", e.Msg); err != nil {
			return err
		}
	}

	msgs := make([]*Message, len(s.Messages))
	for i, ms := range s.Messages {
		msgs[i] = &Message{
			Src: ms.Src, Dst: ms.Dst, Size: ms.Size,
			Payload:     ms.Payload,
			EnqueuedAt:  ms.EnqueuedAt,
			InjectedAt:  ms.InjectedAt,
			DeliveredAt: ms.DeliveredAt,
			Hops:        ms.Hops,
			remaining:   ms.Remaining,
			curDim:      ms.CurDim,
			vcClass:     ms.VCClass,
		}
	}
	// Reset every router to zero state, then overlay the sparse entries
	// and rebuild the active worklist from the restored occupancy.
	for i := range nw.in {
		nw.in[i].head, nw.in[i].count = 0, 0
		nw.owner[i] = nil
		nw.ownerInput[i] = 0
		nw.lastGranted[i] = 0
	}
	for i := range nw.lastVC {
		nw.lastVC[i] = 0
	}
	for v := 0; v < nodes; v++ {
		nw.routerFlits[v] = 0
		nw.occ[v] = [2]uint64{}
		nw.injectQ[v] = nil
		nw.isActive[v] = false
	}
	nw.activeIDs = nw.activeIDs[:0]
	nw.activeDirty = false
	for _, rs := range s.Routers {
		v := rs.Index
		base := v * nin
		for i, flits := range rs.Inputs {
			in := &nw.in[base+i]
			if len(flits) > 0 && in.buf == nil {
				in.buf = make([]flit, nw.cfg.BufferDepth)
			}
			in.head, in.count = 0, len(flits)
			for n, f := range flits {
				in.buf[n] = flit{msg: msgs[f.Msg], seq: f.Seq, arrivedAt: f.ArrivedAt}
			}
			if len(flits) > 0 {
				nw.setOcc(v, i)
			}
			nw.routerFlits[v] += int32(len(flits))
		}
		for i, owner := range rs.Owner {
			if owner != -1 {
				nw.owner[base+i] = msgs[owner]
				nw.ownerInput[base+i] = int32(rs.OwnerInput[i])
			}
			nw.lastGranted[base+i] = int32(rs.LastGranted[i])
		}
		for o, vc := range rs.LastVC {
			nw.lastVC[v*nw.ports+o] = uint8(vc)
		}
	}
	nw.queued = 0
	for _, qs := range s.InjectQ {
		queue := make([]*Message, len(qs.Msgs))
		for i, idx := range qs.Msgs {
			queue[i] = msgs[idx]
		}
		nw.injectQ[qs.Node] = queue
		nw.queued += len(queue)
	}
	for v := 0; v < nodes; v++ {
		if nw.routerFlits[v] > 0 || len(nw.injectQ[v]) > 0 {
			nw.activate(v)
		}
	}
	if nw.forceDense {
		nw.forceDenseSweep()
	}
	nw.local = make([]localEntry, len(s.Local))
	for i, e := range s.Local {
		nw.local[i] = localEntry{msg: msgs[e.Msg], due: e.Due}
	}
	nw.now = s.Now
	nw.lastProgress = s.LastProgress
	nw.flitsIn = s.FlitsIn
	nw.flitsOut = s.FlitsOut
	nw.statsSince = s.StatsSince
	nw.injected.SetValue(s.Injected)
	nw.deliveredCount.SetValue(s.Delivered)
	nw.flitHops.SetValue(s.FlitHops)
	nw.faultStalls.SetValue(s.FaultStalls)
	nw.latency.SetState(s.Latency)
	nw.netLatency.SetState(s.NetLatency)
	nw.hops.SetState(s.Hops)
	nw.sizes.SetState(s.Sizes)
	return nw.Check()
}
