package netsim

import (
	"fmt"

	"locality/internal/stats"
)

// This file serializes the fabric. A Message is shared by pointer
// between its buffered flits, virtual-output ownerships, injection
// queue slot, and local-bypass entry; the checkpoint flattens every
// distinct message into an indexed table (enumeration order: router
// buffers, then owners, then injection queues, then local bypass — a
// deterministic order, so encoding is canonical) and references it by
// index. Payloads ride along as opaque values; the checkpoint codec is
// responsible for encoding them.

// MessageState is one in-flight message's serialized state.
type MessageState struct {
	Src, Dst, Size                      int
	Payload                             any
	EnqueuedAt, InjectedAt, DeliveredAt int64
	Hops                                int
	Remaining                           int
	CurDim                              int
	VCClass                             int
}

// FlitState is one buffered flit; Msg indexes the message table.
type FlitState struct {
	Msg       int
	Seq       int
	ArrivedAt int64
}

// RouterState is one switch's serialized state. Inputs hold each
// buffer's flits in pop order.
type RouterState struct {
	Inputs      [][]FlitState
	Owner       []int // message index, -1 when free
	OwnerInput  []int
	LastGranted []int
	LastVC      []int
}

// LocalState is one local-bypass delivery in flight.
type LocalState struct {
	Msg int
	Due int64
}

// CheckpointState is the network's complete serializable state.
type CheckpointState struct {
	Messages []MessageState
	Routers  []RouterState
	InjectQ  [][]int // message indices per node
	Local    []LocalState

	Now          int64
	LastProgress int64
	FlitsIn      int64
	FlitsOut     int64

	StatsSince  int64
	Injected    int64
	Delivered   int64
	FlitHops    int64
	FaultStalls int64
	Latency     stats.MeanState
	NetLatency  stats.MeanState
	Hops        stats.MeanState
	Sizes       stats.MeanState
}

// Checkpoint captures the network's current state.
func (nw *Network) Checkpoint() CheckpointState {
	index := make(map[*Message]int)
	var msgs []MessageState
	ref := func(m *Message) int {
		if i, ok := index[m]; ok {
			return i
		}
		i := len(msgs)
		index[m] = i
		msgs = append(msgs, MessageState{
			Src: m.Src, Dst: m.Dst, Size: m.Size,
			Payload:     m.Payload,
			EnqueuedAt:  m.EnqueuedAt,
			InjectedAt:  m.InjectedAt,
			DeliveredAt: m.DeliveredAt,
			Hops:        m.Hops,
			Remaining:   m.remaining,
			CurDim:      m.curDim,
			VCClass:     m.vcClass,
		})
		return i
	}
	s := CheckpointState{
		Routers:      make([]RouterState, len(nw.routers)),
		InjectQ:      make([][]int, len(nw.injectQ)),
		Now:          nw.now,
		LastProgress: nw.lastProgress,
		FlitsIn:      nw.flitsIn,
		FlitsOut:     nw.flitsOut,
		StatsSince:   nw.statsSince,
		Injected:     nw.injected.Value(),
		Delivered:    nw.deliveredCount.Value(),
		FlitHops:     nw.flitHops.Value(),
		FaultStalls:  nw.faultStalls.Value(),
		Latency:      nw.latency.State(),
		NetLatency:   nw.netLatency.State(),
		Hops:         nw.hops.State(),
		Sizes:        nw.sizes.State(),
	}
	for v := range nw.routers {
		r := &nw.routers[v]
		rs := RouterState{
			Inputs:      make([][]FlitState, len(r.inputs)),
			Owner:       make([]int, len(r.owner)),
			OwnerInput:  append([]int(nil), r.ownerInput...),
			LastGranted: append([]int(nil), r.lastGranted...),
			LastVC:      append([]int(nil), r.lastVC...),
		}
		for i, in := range r.inputs {
			var flits []FlitState // nil when empty, matching the codec
			for n := 0; n < in.count; n++ {
				f := in.buf[(in.head+n)%len(in.buf)]
				flits = append(flits, FlitState{Msg: ref(f.msg), Seq: f.seq, ArrivedAt: f.arrivedAt})
			}
			rs.Inputs[i] = flits
		}
		for i, owner := range r.owner {
			if owner == nil {
				rs.Owner[i] = -1
			} else {
				rs.Owner[i] = ref(owner)
			}
		}
		s.Routers[v] = rs
	}
	for v, q := range nw.injectQ {
		idxs := make([]int, len(q))
		for i, m := range q {
			idxs[i] = ref(m)
		}
		s.InjectQ[v] = idxs
	}
	s.Local = make([]LocalState, len(nw.local))
	for i, e := range nw.local {
		s.Local[i] = LocalState{Msg: ref(e.msg), Due: e.due}
	}
	s.Messages = msgs
	return s
}

// Restore overwrites the network with a previously captured state. The
// network must be freshly built with the same configuration; the
// delivery callback and fault model stay as wired.
func (nw *Network) Restore(s CheckpointState) error {
	if len(s.Routers) != len(nw.routers) {
		return fmt.Errorf("netsim: checkpoint has %d routers, network has %d", len(s.Routers), len(nw.routers))
	}
	if len(s.InjectQ) != len(nw.injectQ) {
		return fmt.Errorf("netsim: checkpoint has %d injection queues, network has %d", len(s.InjectQ), len(nw.injectQ))
	}
	nodes := nw.topo.Nodes()
	for i, ms := range s.Messages {
		if ms.Src < 0 || ms.Src >= nodes || ms.Dst < 0 || ms.Dst >= nodes {
			return fmt.Errorf("netsim: message %d endpoints %d→%d out of range", i, ms.Src, ms.Dst)
		}
		if ms.Size < 1 || ms.Remaining < 0 || ms.Remaining > ms.Size {
			return fmt.Errorf("netsim: message %d size %d / remaining %d invalid", i, ms.Size, ms.Remaining)
		}
		if ms.CurDim < -1 || ms.CurDim >= nw.dims || ms.VCClass < 0 || ms.VCClass > 1 {
			return fmt.Errorf("netsim: message %d routing state invalid", i)
		}
	}
	checkRef := func(what string, idx int) error {
		if idx < 0 || idx >= len(s.Messages) {
			return fmt.Errorf("netsim: %s references message %d of %d", what, idx, len(s.Messages))
		}
		return nil
	}
	nin := 2*nw.ports + 1
	for v, rs := range s.Routers {
		if len(rs.Inputs) != nin || len(rs.Owner) != nin || len(rs.OwnerInput) != nin || len(rs.LastGranted) != nin {
			return fmt.Errorf("netsim: router %d checkpoint geometry mismatch", v)
		}
		if len(rs.LastVC) != nw.ports {
			return fmt.Errorf("netsim: router %d has %d VC rotors, want %d", v, len(rs.LastVC), nw.ports)
		}
		for i, flits := range rs.Inputs {
			if len(flits) > nw.cfg.BufferDepth {
				return fmt.Errorf("netsim: router %d input %d holds %d flits, depth is %d", v, i, len(flits), nw.cfg.BufferDepth)
			}
			for _, f := range flits {
				if err := checkRef("buffered flit", f.Msg); err != nil {
					return err
				}
				if f.Seq < 0 || f.Seq >= s.Messages[f.Msg].Size {
					return fmt.Errorf("netsim: flit sequence %d outside message of %d flits", f.Seq, s.Messages[f.Msg].Size)
				}
			}
		}
		for i, owner := range rs.Owner {
			if owner != -1 {
				if err := checkRef("output owner", owner); err != nil {
					return err
				}
			}
			if rs.OwnerInput[i] < 0 || rs.OwnerInput[i] >= nin {
				return fmt.Errorf("netsim: router %d owner input %d out of range", v, rs.OwnerInput[i])
			}
			if rs.LastGranted[i] < 0 || rs.LastGranted[i] >= nin {
				return fmt.Errorf("netsim: router %d arbitration rotor %d out of range", v, rs.LastGranted[i])
			}
		}
		for o, vc := range rs.LastVC {
			if vc < 0 || vc > 1 {
				return fmt.Errorf("netsim: router %d port %d VC rotor %d invalid", v, o, vc)
			}
		}
	}
	for v, q := range s.InjectQ {
		for _, idx := range q {
			if err := checkRef(fmt.Sprintf("injection queue %d", v), idx); err != nil {
				return err
			}
		}
	}
	for _, e := range s.Local {
		if err := checkRef("local delivery", e.Msg); err != nil {
			return err
		}
	}

	msgs := make([]*Message, len(s.Messages))
	for i, ms := range s.Messages {
		msgs[i] = &Message{
			Src: ms.Src, Dst: ms.Dst, Size: ms.Size,
			Payload:     ms.Payload,
			EnqueuedAt:  ms.EnqueuedAt,
			InjectedAt:  ms.InjectedAt,
			DeliveredAt: ms.DeliveredAt,
			Hops:        ms.Hops,
			remaining:   ms.Remaining,
			curDim:      ms.CurDim,
			vcClass:     ms.VCClass,
		}
	}
	for v, rs := range s.Routers {
		r := &nw.routers[v]
		for i, flits := range rs.Inputs {
			in := r.inputs[i]
			in.head, in.count = 0, len(flits)
			for n, f := range flits {
				in.buf[n] = flit{msg: msgs[f.Msg], seq: f.Seq, arrivedAt: f.ArrivedAt}
			}
		}
		for i, owner := range rs.Owner {
			if owner == -1 {
				r.owner[i] = nil
			} else {
				r.owner[i] = msgs[owner]
			}
		}
		copy(r.ownerInput, rs.OwnerInput)
		copy(r.lastGranted, rs.LastGranted)
		copy(r.lastVC, rs.LastVC)
	}
	nw.queued = 0
	for v, q := range s.InjectQ {
		queue := make([]*Message, len(q))
		for i, idx := range q {
			queue[i] = msgs[idx]
		}
		nw.injectQ[v] = queue
		nw.queued += len(queue)
	}
	nw.local = make([]localEntry, len(s.Local))
	for i, e := range s.Local {
		nw.local[i] = localEntry{msg: msgs[e.Msg], due: e.Due}
	}
	nw.now = s.Now
	nw.lastProgress = s.LastProgress
	nw.flitsIn = s.FlitsIn
	nw.flitsOut = s.FlitsOut
	nw.statsSince = s.StatsSince
	nw.injected.SetValue(s.Injected)
	nw.deliveredCount.SetValue(s.Delivered)
	nw.flitHops.SetValue(s.FlitHops)
	nw.faultStalls.SetValue(s.FaultStalls)
	nw.latency.SetState(s.Latency)
	nw.netLatency.SetState(s.NetLatency)
	nw.hops.SetState(s.Hops)
	nw.sizes.SetState(s.Sizes)
	return nw.Check()
}
