package netsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"locality/internal/faults"
	"locality/internal/topology"
)

// twinNets builds two identical networks, one driven by the active
// worklist and one forced to the dense reference sweep, with fresh
// fault models when spec is non-nil (each twin needs its own RNG
// state).
func twinNets(t *testing.T, k, n, depth int, spec *faults.Spec) (active, dense *Network) {
	t.Helper()
	build := func() *Network {
		tor := topology.MustNew(k, n)
		var fm LinkFaultModel
		if spec != nil {
			fm = faults.NewLinkFaults(*spec, tor.ChannelCount())
		}
		nw, err := New(Config{Topo: tor, BufferDepth: depth, Faults: fm})
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	active, dense = build(), build()
	dense.forceDenseSweep()
	return active, dense
}

// sendRandom drives identical randomized traffic into both networks.
func sendRandom(t *testing.T, rng *rand.Rand, nets ...*Network) {
	t.Helper()
	nodes := nets[0].nodes
	src, dst := rng.Intn(nodes), rng.Intn(nodes)
	size := 1 + rng.Intn(10)
	for _, nw := range nets {
		if err := nw.Send(&Message{Src: src, Dst: dst, Size: size}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestActiveSetMatchesDenseSweep is the worklist's core differential
// guarantee: stepping via the active worklist and stepping via the
// dense all-routers sweep produce identical deliveries, statistics,
// and serialized fabric state, cycle for cycle, with and without link
// faults.
func TestActiveSetMatchesDenseSweep(t *testing.T) {
	specs := map[string]*faults.Spec{
		"clean":  nil,
		"faults": {Seed: 11, LinkMTTF: 400, StallMin: 5, StallMax: 40},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			active, dense := twinNets(t, 4, 2, 2, spec)
			var aDel, dDel []string
			active.SetDelivery(func(now int64, m *Message) {
				aDel = append(aDel, fmt.Sprintf("%d:%d→%d@%d", now, m.Src, m.Dst, m.DeliveredAt))
			})
			dense.SetDelivery(func(now int64, m *Message) {
				dDel = append(dDel, fmt.Sprintf("%d:%d→%d@%d", now, m.Src, m.Dst, m.DeliveredAt))
			})
			rng := rand.New(rand.NewSource(99))
			for cycle := 0; cycle < 2500; cycle++ {
				if rng.Intn(4) == 0 {
					sendRandom(t, rng, active, dense)
				}
				active.Step()
				dense.Step()
				if !reflect.DeepEqual(aDel, dDel) {
					t.Fatalf("cycle %d: deliveries diverged\n active: %v\n dense:  %v", cycle, aDel, dDel)
				}
				if a, d := active.Snapshot(), dense.Snapshot(); a != d {
					t.Fatalf("cycle %d: stats diverged\n active: %+v\n dense:  %+v", cycle, a, d)
				}
				if cycle%50 == 0 {
					a, d := active.Checkpoint(), dense.Checkpoint()
					if !reflect.DeepEqual(a, d) {
						t.Fatalf("cycle %d: serialized fabric state diverged", cycle)
					}
					if err := active.Check(); err != nil {
						t.Fatalf("cycle %d: %v", cycle, err)
					}
					if err := dense.Check(); err != nil {
						t.Fatalf("cycle %d (dense): %v", cycle, err)
					}
				}
			}
			for budget := 0; budget < 200000 && (active.Busy() || dense.Busy()); budget++ {
				active.Step()
				dense.Step()
			}
			if active.Busy() || dense.Busy() {
				t.Fatal("networks did not drain")
			}
			if !reflect.DeepEqual(aDel, dDel) {
				t.Fatal("final deliveries differ")
			}
			if a, d := active.Snapshot(), dense.Snapshot(); a != d {
				t.Fatalf("final stats differ:\n active: %+v\n dense:  %+v", a, d)
			}
			if active.ActiveRouters() != 0 {
				t.Errorf("drained fabric still lists %d active routers", active.ActiveRouters())
			}
		})
	}
}

// TestWorklistInvariantUnderRandomWorkload asserts after every cycle
// that the worklist equals exactly the set of routers with non-empty
// input buffers or injection queues — the Check invariant — across a
// randomized workload, with and without faults, and across Step and
// SkipTo interleavings.
func TestWorklistInvariantUnderRandomWorkload(t *testing.T) {
	specs := map[string]*faults.Spec{
		"clean":  nil,
		"faults": {Seed: 3, LossRate: 0, LinkMTTF: 250, StallMin: 4, StallMax: 24},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			tor := topology.MustNew(4, 2)
			var fm LinkFaultModel
			if spec != nil {
				fm = faults.NewLinkFaults(*spec, tor.ChannelCount())
			}
			nw, err := New(Config{Topo: tor, BufferDepth: 4, Faults: fm, LocalDelay: 3})
			if err != nil {
				t.Fatal(err)
			}
			nw.SetDelivery(func(now int64, m *Message) {})
			rng := rand.New(rand.NewSource(17))
			for cycle := 0; cycle < 3000; cycle++ {
				if rng.Intn(3) == 0 {
					src, dst := rng.Intn(16), rng.Intn(16)
					// src == dst exercises the local bypass alongside
					// fabric traffic.
					if err := nw.Send(&Message{Src: src, Dst: dst, Size: 1 + rng.Intn(8)}); err != nil {
						t.Fatal(err)
					}
				}
				if nw.Skippable() && rng.Intn(20) == 0 {
					// A quiescent fabric may bulk-skip; the worklist must
					// survive the jump (it is empty by the invariant).
					skip := nw.now + int64(1+rng.Intn(5))
					if due, ok := nw.NextLocalDue(); ok && due < skip {
						skip = due
					}
					nw.SkipTo(skip)
				}
				nw.Step()
				if err := nw.Check(); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
			}
			drain(t, nw, 200000)
			if err := nw.Check(); err != nil {
				t.Fatal(err)
			}
			if nw.ActiveRouters() != 0 {
				t.Errorf("quiescent fabric lists %d active routers", nw.ActiveRouters())
			}
		})
	}
}

// TestStepSteadyStateDoesNotAllocate covers the decide() scratch-buffer
// reuse (and the lazily allocated buffers' steady state): once traffic
// is flowing and the per-cycle move buffer has grown to its working
// size, Step must be allocation-free.
func TestStepSteadyStateDoesNotAllocate(t *testing.T) {
	nw := newNet(t, 8, 2, 4)
	nw.SetDelivery(func(now int64, m *Message) {})
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 400; i++ {
		src, dst := rng.Intn(64), rng.Intn(64)
		if src == dst {
			continue
		}
		if err := nw.Send(&Message{Src: src, Dst: dst, Size: 24}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: grow the moves scratch buffer and fault the lazily
	// allocated input buffers along the traffic's routes.
	nw.Run(200)
	if nw.Quiesced() {
		t.Fatal("traffic drained before the steady-state measurement")
	}
	if avg := testing.AllocsPerRun(100, func() { nw.Step() }); avg != 0 {
		t.Errorf("Step allocated %.1f times per cycle in steady state, want 0", avg)
	}
}

// TestInjectQReleasesDeliveredMessages guards the injection-queue leak
// fix: after a queue drains, its backing array must not keep popped
// messages reachable.
func TestInjectQReleasesDeliveredMessages(t *testing.T) {
	nw := newNet(t, 4, 2, 4)
	nw.SetDelivery(func(now int64, m *Message) {})
	for i := 0; i < 8; i++ {
		if err := nw.Send(&Message{Src: 0, Dst: 5, Size: 2}); err != nil {
			t.Fatal(err)
		}
	}
	backing := nw.injectQ[0][:cap(nw.injectQ[0])]
	drain(t, nw, 10000)
	for i, m := range backing {
		if m != nil {
			t.Fatalf("drained injection queue still references message %d (%p)", i, m)
		}
	}
}

// newIdleCornerNet builds a large torus with a little traffic pinned in
// one corner — the mostly-idle regime the worklist targets. refill
// re-arms the corner traffic so the fabric never drains during timing.
func newIdleCornerNet(tb testing.TB, k int, dense bool) (nw *Network, refill func()) {
	tor := topology.MustNew(k, 2)
	nw, err := New(Config{Topo: tor, BufferDepth: 8})
	if err != nil {
		tb.Fatal(err)
	}
	if dense {
		nw.forceDenseSweep()
	}
	nw.SetDelivery(func(now int64, m *Message) {})
	refill = func() {
		if nw.QueuedMessages() > 8 {
			return
		}
		for i := 0; i < 4; i++ {
			// Short hops among the corner's neighborhood.
			src := i * k
			dst := (i+1)*k + 1
			if err := nw.Send(&Message{Src: src, Dst: dst, Size: 12}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	refill()
	return nw, refill
}

// BenchmarkLargeIdleFabric measures a mostly-idle 256×256 torus
// (65,536 routers, a handful active) under the active worklist vs the
// dense reference sweep. The worklist's per-cycle cost tracks the
// active handful; the dense sweep pays for every router.
func BenchmarkLargeIdleFabric(b *testing.B) {
	for _, mode := range []string{"active", "dense"} {
		b.Run(mode, func(b *testing.B) {
			nw, refill := newIdleCornerNet(b, 256, mode == "dense")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				refill()
				nw.Step()
			}
		})
	}
}

// TestLargeIdleFabricSpeedup is the CI gate on the worklist's payoff:
// ≥10× over the dense sweep on the mostly-idle 256×256 torus. The
// real margin is orders of magnitude (tens of active routers vs
// 65,536), so the 10× floor has enormous headroom against noise.
func TestLargeIdleFabricSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("large-torus timing comparison skipped in -short")
	}
	const cycles = 120
	timeMode := func(dense bool) time.Duration {
		nw, refill := newIdleCornerNet(t, 256, dense)
		// Warm both paths through one step before timing.
		refill()
		nw.Step()
		start := time.Now()
		for i := 0; i < cycles; i++ {
			refill()
			nw.Step()
		}
		return time.Since(start)
	}
	activeT := timeMode(false)
	denseT := timeMode(true)
	speedup := float64(denseT) / float64(activeT)
	t.Logf("mostly-idle 256×256: active %v, dense %v for %d cycles → %.0f× speedup", activeT, denseT, cycles, speedup)
	if speedup < 10 {
		t.Errorf("active worklist speedup %.1f× on a mostly-idle 256×256 torus, want ≥ 10×", speedup)
	}
}
