package main

import (
	"strings"
	"testing"

	"locality/internal/sweepgrid"
)

// testGrid builds a minimal fault-free grid under the named kernel, so
// resume parsing can be exercised against real Header/KernelComment
// values.
func testGrid(t *testing.T, kernel string) *sweepgrid.Grid {
	t.Helper()
	g, err := sweepgrid.New(sweepgrid.Spec{
		Radix: 4, Dims: 2, Contexts: []int{1}, Mappings: "identity",
		Warmup: 1, Window: 1, Ratio: 2, Kernel: kernel,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

var testHeader = []string{"mapping", "d", "contexts", "prefetch", "B", "g", "tm", "rm", "Tm", "Tt", "tt", "rt", "utilization"}

func TestResumeRowsParsesPartialOutput(t *testing.T) {
	csv := strings.Join([]string{
		testGrid(t, "event").KernelComment(),
		strings.Join(testHeader, ","),
		"identity,1,1,false,11.9,3.2,21.4,0.046,12.8,34.4,35.1,0.0285,0.138",
		"random:1,2.5,1,false,11.9,3.2,21.4,0.046,12.8,34.4,35.1,0.0285,0.138",
		"transpose,2,1,false,error=machine stalled,,,,,,,,",
		"identity,1,2,false,11.9,3.2", // cut off mid-write
	}, "\n") + "\n"
	rows, err := resumeRows(strings.NewReader(csv), testGrid(t, "event"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rows[rowKey("identity", "1")]; !ok {
		t.Error("completed row identity/p1 not indexed")
	}
	if _, ok := rows[rowKey("random:1", "1")]; !ok {
		t.Error("completed row random:1/p1 not indexed")
	}
	// The error row and the truncated row are indexed (or not) but must
	// never be usable.
	prefix := []string{"transpose", "2", "1", "false"}
	if row, ok := rows[rowKey("transpose", "1")]; ok && usableResumeRow(row, prefix, len(testHeader)) {
		t.Error("error= row counted as usable")
	}
	prefix = []string{"identity", "1", "2", "false"}
	if row, ok := rows[rowKey("identity", "2")]; ok && usableResumeRow(row, prefix, len(testHeader)) {
		t.Error("truncated row counted as usable")
	}
}

func TestResumeRowsDropsTrailingGarbage(t *testing.T) {
	// A crash can leave a final line with an unterminated quote; rows
	// before it must survive, the garbage must not.
	csv := strings.Join(testHeader, ",") + "\n" +
		"identity,1,1,false,11.9,3.2,21.4,0.046,12.8,34.4,35.1,0.0285,0.138\n" +
		`random:1,2.5,1,false,"11.9`
	rows, err := resumeRows(strings.NewReader(csv), testGrid(t, "event"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rows[rowKey("identity", "1")]; !ok {
		t.Error("row before the torn tail was dropped")
	}
	if _, ok := rows[rowKey("random:1", "1")]; ok {
		t.Error("torn trailing row was indexed")
	}
}

func TestResumeRowsRejectsHeaderMismatch(t *testing.T) {
	faultHeader := strings.Join(append(append([]string{}, testHeader...), "retries", "home_retries", "dropped", "fault_cycles"), ",")
	if _, err := resumeRows(strings.NewReader(faultHeader+"\n"), testGrid(t, "event")); err == nil {
		t.Error("fault-sweep output accepted for a fault-free resume")
	}
	if _, err := resumeRows(strings.NewReader(""), testGrid(t, "event")); err == nil {
		t.Error("empty resume file accepted")
	}
}

func TestResumeRowsRejectsKernelMismatch(t *testing.T) {
	body := strings.Join(testHeader, ",") + "\n" +
		"identity,1,1,false,11.9,3.2,21.4,0.046,12.8,34.4,35.1,0.0285,0.138\n"

	// A sharded sweep must refuse rows recorded under the tick kernel,
	// and name both kernels in the error.
	in := testGrid(t, "tick").KernelComment() + "\n" + body
	_, err := resumeRows(strings.NewReader(in), testGrid(t, "sharded"))
	if err == nil {
		t.Fatal("tick-kernel resume file accepted for a sharded sweep")
	}
	for _, want := range []string{"tick", "sharded"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("kernel-mismatch error %q does not name %q", err, want)
		}
	}

	// Matching kernel comment: accepted, rows indexed.
	in = testGrid(t, "sharded").KernelComment() + "\n" + body
	rows, err := resumeRows(strings.NewReader(in), testGrid(t, "sharded"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rows[rowKey("identity", "1")]; !ok {
		t.Error("row under the matching kernel comment not indexed")
	}

	// Legacy file with no kernel comment: accepted for compatibility.
	if _, err := resumeRows(strings.NewReader(body), testGrid(t, "sharded")); err != nil {
		t.Errorf("legacy resume file without kernel comment rejected: %v", err)
	}
}

func TestUsableResumeRow(t *testing.T) {
	prefix := []string{"identity", "1", "2", "false"}
	good := []string{"identity", "1", "2", "false", "11.9", "3.2", "21.4", "0.046", "12.8", "34.4", "35.1", "0.0285", "0.138"}
	if !usableResumeRow(good, prefix, len(testHeader)) {
		t.Error("complete row rejected")
	}
	cases := map[string][]string{
		"short row":        good[:7],
		"error row":        {"identity", "1", "2", "false", "error=stalled", "", "", "", "", "", "", "", ""},
		"empty measure":    {"identity", "1", "2", "false", "", "", "", "", "", "", "", "", ""},
		"wrong mapping":    append([]string{"random:1"}, good[1:]...),
		"wrong prefetch":   {"identity", "1", "2", "true", "11.9", "3.2", "21.4", "0.046", "12.8", "34.4", "35.1", "0.0285", "0.138"},
		"wrong distance":   {"identity", "2", "2", "false", "11.9", "3.2", "21.4", "0.046", "12.8", "34.4", "35.1", "0.0285", "0.138"},
		"extra column row": append(append([]string{}, good...), "x"),
	}
	for name, row := range cases {
		if usableResumeRow(row, prefix, len(testHeader)) {
			t.Errorf("%s counted as usable", name)
		}
	}
}
