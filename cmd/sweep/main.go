// Command sweep runs a grid of full-system simulations — mappings ×
// context counts — and emits one CSV row of measurements per run, for
// custom studies beyond the canned figures:
//
//	sweep -mappings suite -contexts 1,2,4
//	sweep -k 4 -mappings identity,random:1,antilocal -contexts 1 -ratio 1
//	sweep -mappings random:1 -contexts 1 -prefetch -out results.csv
//
// Columns: mapping, d, contexts, prefetch, B, g, tm, rm, Tm, Tt, tt,
// rt, utilization.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"locality/internal/machine"
	"locality/internal/mapsel"
	"locality/internal/topology"
	"locality/internal/workload"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

func parseContexts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("sweep: bad context count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty context list %q", s)
	}
	return out, nil
}

func main() {
	k := flag.Int("k", 8, "torus radix")
	n := flag.Int("n", 2, "torus dimensions")
	contextsFlag := flag.String("contexts", "1", "comma-separated context counts")
	mappingsFlag := flag.String("mappings", "suite", "comma-separated mapping selectors (see internal/mapsel)")
	warmup := flag.Int64("warmup", 4000, "warmup P-cycles")
	window := flag.Int64("window", 12000, "measurement window P-cycles")
	ratio := flag.Int("ratio", 2, "network cycles per processor cycle")
	prefetch := flag.Bool("prefetch", false, "enable neighbor prefetching in the workload")
	out := flag.String("out", "", "output CSV path (default stdout)")
	flag.Parse()

	tor, err := topology.New(*k, *n)
	if err != nil {
		fatal(err)
	}
	maps, err := mapsel.List(tor, *mappingsFlag)
	if err != nil {
		fatal(err)
	}
	contexts, err := parseContexts(*contextsFlag)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	header := []string{"mapping", "d", "contexts", "prefetch", "B", "g", "tm", "rm", "Tm", "Tt", "tt", "rt", "utilization"}
	if err := cw.Write(header); err != nil {
		fatal(err)
	}

	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, p := range contexts {
		for _, m := range maps {
			cfg := machine.DefaultConfig(tor, m, p)
			cfg.ClockRatio = *ratio
			if *prefetch {
				cfg.Workload = workload.RelaxationConfig{
					Graph:        tor,
					Map:          m,
					Instances:    p,
					LineSize:     cfg.LineSize,
					ReadCompute:  cfg.ReadCompute,
					WriteCompute: cfg.WriteCompute,
					Prefetch:     true,
				}
			}
			mach, err := machine.New(cfg)
			if err != nil {
				fatal(err)
			}
			met := mach.RunMeasured(*warmup, *window)
			row := []string{
				m.Name, f(m.AvgDistance(tor)), strconv.Itoa(p), strconv.FormatBool(*prefetch),
				f(met.MsgSize), f(met.MsgsPerTxn), f(met.InterMsgTime), f(met.MsgRate),
				f(met.MsgLatency), f(met.TxnLatency), f(met.InterTxnTime), f(met.TxnRate),
				f(met.ChannelUtilization),
			}
			if err := cw.Write(row); err != nil {
				fatal(err)
			}
			cw.Flush() // stream rows as runs finish
		}
	}
}
