// Command sweep runs a grid of full-system simulations — mappings ×
// context counts — and emits one CSV row of measurements per run, for
// custom studies beyond the canned figures:
//
//	sweep -mappings suite -contexts 1,2,4
//	sweep -k 4 -mappings identity,random:1,antilocal -contexts 1 -ratio 1
//	sweep -mappings random:1 -contexts 1 -prefetch -out results.csv
//	sweep -mappings suite -fault-rate 0.01 -link-mttf 5000 -fault-seed 7
//	sweep -mappings suite -contexts 1,2,4 -workers 8 -progress
//
// Columns: mapping, d, contexts, prefetch, B, g, tm, rm, Tm, Tt, tt,
// rt, utilization. With fault injection enabled (-fault-rate or
// -link-mttf), four accounting columns are appended: retries,
// home_retries, dropped, fault_cycles.
//
// Cells run on -workers goroutines (default GOMAXPROCS) through the
// experiment engine; rows are still emitted in grid order, so the CSV
// is byte-identical at any worker count. A cell that fails
// (stall-report abort, configuration error, or panic) emits its row
// with error=<message> in the first measurement column; the rest of
// the grid still runs and sweep exits nonzero at the end.
//
// The output's first line is a "# kernel=<kind>" comment recording the
// execution kernel; all kernels produce bit-identical rows, but a
// resumed sweep refuses a resume file recorded under a different
// kernel rather than silently mixing provenance.
//
// Interrupted sweeps resume: -resume old.csv re-emits the completed
// rows of a partial output verbatim and runs only the cells that are
// missing, errored, or cut off mid-write. The merged output streams in
// grid order and is byte-identical to an uninterrupted sweep's
// (simulations are deterministic, so re-run cells reproduce the rows
// the interrupted sweep would have written):
//
//	sweep -mappings suite -contexts 1,2,4 -out results.csv
//	^C
//	sweep -mappings suite -contexts 1,2,4 -resume results.csv -out results2.csv
//
// Observability on long sweeps: -telemetry gives every cell its own
// metrics registry and cycle attribution (the CSV stays byte-identical
// — telemetry never touches simulated results); -slice N with
// -slice-dir writes one time-sliced sample file per cell; -trace-dir
// writes one Perfetto-loadable Chrome trace JSON per cell; -heartbeat
// prints periodic completed/total + ETA lines to stderr; -obs serves
// the live observability endpoints (/metrics Prometheus exposition,
// /statusz run status with per-cell progress and ETA, /healthz, and
// /debug/pprof) on the given address while the sweep runs; -ledger
// appends one structured run record per invocation to a JSONL ledger
// for cmd/perfcheck. -pprof is a deprecated alias for -obs, kept one
// release: the obs server includes the pprof handlers.
//
// -capture-dir writes one replayable reference trace (<cell>.lref,
// package internal/replay) per cell: the recorded streams can be
// re-run with tracetool replay or fitted with tracetool fit. Capturing
// never changes the simulated results or the CSV.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"locality/internal/engine"
	"locality/internal/faults"
	"locality/internal/machine"
	"locality/internal/mapping"
	"locality/internal/mapsel"
	"locality/internal/obs"
	"locality/internal/replay"
	"locality/internal/sim"
	"locality/internal/telemetry"
	"locality/internal/topology"
	"locality/internal/trace"
	"locality/internal/workload"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

func parseContexts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("sweep: bad context count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty context list %q", s)
	}
	return out, nil
}

// cell is one grid point's configuration.
type cell struct {
	tor      *topology.Torus
	m        *mapping.Mapping
	contexts int
	prefetch bool
	ratio    int
	spec     faults.Spec
	watchdog faults.Watchdog
	warmup   int64
	window   int64
	kernel   machine.KernelMode
	shards   int

	// Observability (all optional). Each cell owns its registry — the
	// engine runs cells concurrently and registries are single-owner.
	telemetry  bool
	slice      int64
	sliceDir   string
	sliceFmt   string
	traceDir   string
	traceCap   int
	captureDir string
	fileStem   string // per-cell output file name, sans extension
	// bridge, when non-nil, receives live snapshots at the cell's
	// run-loop chunk boundaries under key (the engine cell key).
	bridge *obs.Bridge
	key    string
}

// runCell builds and measures one machine. Panics from deep inside the
// simulator are recovered by the engine, so one broken cell cannot
// kill the sweep.
func runCell(ctx context.Context, c cell) (machine.Metrics, error) {
	cfg := machine.DefaultConfig(c.tor, c.m, c.contexts)
	cfg.Kernel = c.kernel
	cfg.Shards = c.shards
	cfg.ClockRatio = c.ratio
	if c.prefetch {
		cfg.Workload = workload.RelaxationConfig{
			Graph:        c.tor,
			Map:          c.m,
			Instances:    c.contexts,
			LineSize:     cfg.LineSize,
			ReadCompute:  cfg.ReadCompute,
			WriteCompute: cfg.WriteCompute,
			Prefetch:     true,
		}
	}
	if c.spec.Enabled() {
		spec := c.spec
		cfg.Faults = &spec
	}
	cfg.Watchdog = c.watchdog
	if c.telemetry {
		cfg.Telemetry = telemetry.New()
	}
	if c.slice > 0 {
		f, err := os.Create(filepath.Join(c.sliceDir, c.fileStem+".slices."+c.sliceFmt))
		if err != nil {
			return machine.Metrics{}, err
		}
		defer f.Close()
		writer, err := telemetry.NewSliceWriter(f, c.sliceFmt)
		if err != nil {
			return machine.Metrics{}, err
		}
		cfg.SliceEvery = c.slice
		cfg.SliceWriter = writer
	}
	if c.traceDir != "" {
		cfg.Trace = trace.New(c.traceCap)
	}
	if c.captureDir != "" {
		cfg.Capture = replay.NewCapture()
	}
	if c.bridge != nil {
		// The bridge needs a registry to snapshot; attaching one is
		// observational, so the CSV stays byte-identical either way.
		if cfg.Telemetry == nil {
			cfg.Telemetry = telemetry.New()
		}
		cfg.Observer = c.bridge.MachineObserver(c.key, c.warmup+c.window)
	}
	mach, err := machine.New(cfg)
	if err != nil {
		return machine.Metrics{}, err
	}
	res, err := mach.Execute(ctx, machine.RunSpec{Warmup: c.warmup, Window: c.window})
	if err != nil {
		return machine.Metrics{}, err
	}
	met := res.Metrics
	mach.FlushSlices()
	if cfg.SliceWriter != nil {
		if err := cfg.SliceWriter.Err(); err != nil {
			return machine.Metrics{}, err
		}
	}
	if c.traceDir != "" {
		f, err := os.Create(filepath.Join(c.traceDir, c.fileStem+".trace.json"))
		if err != nil {
			return machine.Metrics{}, err
		}
		if err := telemetry.WriteChromeTrace(f, cfg.Trace.Events()); err != nil {
			f.Close()
			return machine.Metrics{}, err
		}
		if err := f.Close(); err != nil {
			return machine.Metrics{}, err
		}
	}
	if c.captureDir != "" {
		tr, err := mach.CapturedTrace(c.warmup, c.window)
		if err != nil {
			return machine.Metrics{}, err
		}
		if err := replay.WriteFile(filepath.Join(c.captureDir, c.fileStem+".lref"), tr); err != nil {
			return machine.Metrics{}, err
		}
	}
	return met, nil
}

// fileStem turns a cell's mapping/context pair into a filesystem-safe
// output file stem.
func fileStem(mappingName string, contexts int) string {
	r := strings.NewReplacer(":", "-", "/", "-", " ", "_")
	return fmt.Sprintf("%s_p%d", r.Replace(mappingName), contexts)
}

// rowKey identifies a grid cell in a sweep CSV: mapping name and
// context count, the two columns that vary across the grid.
func rowKey(mappingName, contexts string) string {
	return mappingName + "\x00" + contexts
}

// kernelComment is the header comment recording which execution kernel
// produced a sweep CSV, written as the file's first line.
func kernelComment(kernel machine.KernelMode) string {
	return "# kernel=" + kernel.String()
}

// resumeRows parses a partial sweep output. The kernel comment, when
// present, must name this invocation's kernel — rows swept under a
// different kernel are refused outright rather than silently mixed
// (files from sweeps predating the comment carry no kernel line and
// are accepted). The CSV header must match the current invocation's
// exactly (a mismatch means the old sweep ran with different fault
// flags and its rows are not comparable). A row cut off mid-write by
// the interruption — or anything after it — is dropped; completed rows
// are returned keyed by rowKey, later duplicates winning.
func resumeRows(r io.Reader, header []string, kernel machine.KernelMode) (map[string][]string, error) {
	br := bufio.NewReader(r)
	if peek, _ := br.Peek(1); len(peek) == 1 && peek[0] == '#' {
		line, err := br.ReadString('\n')
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("reading resume kernel comment: %w", err)
		}
		line = strings.TrimSpace(line)
		if got, want := line, kernelComment(kernel); got != want {
			return nil, fmt.Errorf("resume file was swept with %q, this sweep runs %q: refusing to mix rows from different kernels (rerun with the matching -kernel)",
				strings.TrimPrefix(got, "# kernel="), kernel)
		}
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading resume header: %w", err)
	}
	if !slices.Equal(first, header) {
		return nil, fmt.Errorf("resume file header %q does not match this sweep's %q (different fault flags?)",
			strings.Join(first, ","), strings.Join(header, ","))
	}
	rows := make(map[string][]string)
	for {
		rec, err := cr.Read()
		if err != nil {
			// io.EOF is the clean end; any other error is a row the
			// interrupted sweep never finished writing.
			return rows, nil
		}
		if len(rec) < 4 {
			continue
		}
		rows[rowKey(rec[0], rec[2])] = rec
	}
}

// usableResumeRow reports whether a cached row can stand in for
// re-running its cell: full width, the exact identity prefix this
// sweep would write, and a real measurement (not an error= marker or
// padding) in the first measurement column.
func usableResumeRow(row, prefix []string, width int) bool {
	return len(row) == width &&
		slices.Equal(row[:len(prefix)], prefix) &&
		row[len(prefix)] != "" &&
		!strings.HasPrefix(row[len(prefix)], "error=")
}

func main() {
	k := flag.Int("k", 8, "torus radix")
	n := flag.Int("n", 2, "torus dimensions")
	contextsFlag := flag.String("contexts", "1", "comma-separated context counts")
	mappingsFlag := flag.String("mappings", "suite", "comma-separated mapping selectors (see internal/mapsel)")
	warmup := flag.Int64("warmup", 4000, "warmup P-cycles")
	window := flag.Int64("window", 12000, "measurement window P-cycles")
	ratio := flag.Int("ratio", 2, "network cycles per processor cycle")
	prefetch := flag.Bool("prefetch", false, "enable neighbor prefetching in the workload")
	out := flag.String("out", "", "output CSV path (default stdout)")
	faultRate := flag.Float64("fault-rate", 0, "protocol message loss probability (0 disables)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection seed")
	linkMTTF := flag.Float64("link-mttf", 0, "mean N-cycles between transient faults per link (0 disables)")
	linkStall := flag.String("link-stall", "", "link stall duration bounds, lo..hi N-cycles (default 16..256)")
	watchdog := flag.Int64("watchdog", 0, "abort a cell after this many P-cycles without progress (0 = auto when faults enabled)")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "stream per-cell progress to stderr")
	kernelFlag := flag.String("kernel", "event", "execution kernel: event (skip quiescent cycles), tick (naive reference loop), or sharded (parallel windows); rows are bit-identical either way")
	shards := flag.Int("shards", 0, "parallel shards per cell under -kernel sharded (0 = min(GOMAXPROCS, radix)); wall-clock only")
	telemetry_ := flag.Bool("telemetry", false, "per-cell metrics registry + cycle attribution (CSV output unchanged)")
	slice := flag.Int64("slice", 0, "per-cell time-sliced sampling every N P-cycles (0 disables; needs -slice-dir)")
	sliceDir := flag.String("slice-dir", "", "directory for per-cell time-slice files (implies -telemetry)")
	sliceFormat := flag.String("slice-format", "csv", "time-slice format: csv or jsonl")
	traceDir := flag.String("trace-dir", "", "directory for per-cell Chrome trace-event JSON files")
	traceCap := flag.Int("trace-cap", 1<<16, "per-cell trace ring-buffer capacity in events")
	captureDir := flag.String("capture-dir", "", "directory for per-cell replayable reference traces (.lref)")
	heartbeat := flag.Duration("heartbeat", 0, "periodic progress/ETA line interval on stderr (0 disables)")
	obsAddr := flag.String("obs", "", "serve live observability (/metrics, /statusz, /healthz, /debug/pprof) on this address, e.g. localhost:9090")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -obs (will be removed next release; the obs server serves /debug/pprof)")
	ledger := flag.String("ledger", "", "append a structured run record to this JSONL ledger (e.g. ledger.jsonl)")
	resume := flag.String("resume", "", "partial output CSV from an interrupted sweep: reuse its completed rows, run only missing or errored cells")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		fmt.Fprintln(os.Stderr, "sweep: -pprof is deprecated, use -obs (same address, adds /metrics, /statusz, /healthz)")
		if *obsAddr == "" {
			*obsAddr = *pprofAddr
		}
	}
	var bridge *obs.Bridge
	if *obsAddr != "" {
		bridge = obs.NewBridge()
		srv, err := obs.NewServer(*obsAddr, bridge)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: observability at http://%s/\n", srv.Addr())
	}
	if *slice > 0 && *sliceDir == "" {
		fatal(fmt.Errorf("-slice requires -slice-dir"))
	}
	if *sliceDir != "" {
		if *slice <= 0 {
			fatal(fmt.Errorf("-slice-dir requires -slice > 0"))
		}
		*telemetry_ = true
		if err := os.MkdirAll(*sliceDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *captureDir != "" {
		if err := os.MkdirAll(*captureDir, 0o755); err != nil {
			fatal(err)
		}
	}

	tor, err := topology.New(*k, *n)
	if err != nil {
		fatal(err)
	}
	maps, err := mapsel.List(tor, *mappingsFlag)
	if err != nil {
		fatal(err)
	}
	contexts, err := parseContexts(*contextsFlag)
	if err != nil {
		fatal(err)
	}
	kernel, err := sim.ParseKernel(*kernelFlag)
	if err != nil {
		fatal(err)
	}
	spec := faults.Spec{Seed: *faultSeed, LossRate: *faultRate, LinkMTTF: *linkMTTF}
	if *linkStall != "" {
		stall, err := faults.ParseSpec("stall=" + *linkStall)
		if err != nil {
			fatal(err)
		}
		spec.StallMin, spec.StallMax = stall.StallMin, stall.StallMax
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	wd := faults.Watchdog{StallCycles: *watchdog}
	if *watchdog == 0 && spec.Enabled() {
		wd.StallCycles = 20 * (*warmup + *window)
	}

	header := []string{"mapping", "d", "contexts", "prefetch", "B", "g", "tm", "rm", "Tm", "Tt", "tt", "rt", "utilization"}
	if spec.Enabled() {
		header = append(header, "retries", "home_retries", "dropped", "fault_cycles")
	}

	// Read the resume file in full before creating the output: -out and
	// -resume may name the same path.
	cached := map[string][]string{}
	if *resume != "" {
		rf, err := os.Open(*resume)
		if err != nil {
			fatal(err)
		}
		cached, err = resumeRows(rf, header, kernel)
		rf.Close()
		if err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	// The kernel comment precedes the CSV header so resumed sweeps can
	// refuse rows produced under a different kernel.
	if _, err := fmt.Fprintln(w, kernelComment(kernel)); err != nil {
		fatal(err)
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write(header); err != nil {
		fatal(err)
	}

	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

	// The grid: contexts-major, mappings-minor, matching the CSV's
	// historical row order. Cells whose rows the resume file already
	// holds are prefilled and never run; the rest are submitted to the
	// engine with their position in the full grid remembered, so the
	// merged output streams in grid order.
	type meta struct {
		m *mapping.Mapping
		p int
	}
	var metas []meta    // full grid
	var fullIndex []int // submitted cell -> full-grid position
	var rows [][]string // full grid, nil = not yet available
	var cells []engine.Cell[machine.Metrics]
	reused := 0
	for _, p := range contexts {
		for _, m := range maps {
			p, m := p, m
			idx := len(metas)
			metas = append(metas, meta{m: m, p: p})
			rows = append(rows, nil)
			prefix := []string{m.Name, f(m.AvgDistance(tor)), strconv.Itoa(p), strconv.FormatBool(*prefetch)}
			if row, ok := cached[rowKey(m.Name, strconv.Itoa(p))]; ok && usableResumeRow(row, prefix, len(header)) {
				rows[idx] = row
				reused++
				continue
			}
			key := fmt.Sprintf("%s p=%d", m.Name, p)
			c := cell{
				tor: tor, m: m, contexts: p, prefetch: *prefetch, ratio: *ratio,
				spec: spec, watchdog: wd, warmup: *warmup, window: *window, kernel: kernel, shards: *shards,
				telemetry: *telemetry_, slice: *slice, sliceDir: *sliceDir, sliceFmt: *sliceFormat,
				traceDir: *traceDir, traceCap: *traceCap, captureDir: *captureDir, fileStem: fileStem(m.Name, p),
				bridge: bridge, key: key,
			}
			fullIndex = append(fullIndex, idx)
			cells = append(cells, engine.Cell[machine.Metrics]{
				Key: key,
				Run: func(ctx context.Context) (machine.Metrics, error) {
					return runCell(ctx, c)
				},
			})
		}
	}
	if *resume != "" {
		fmt.Fprintf(os.Stderr, "sweep: resuming: %d of %d rows reused, %d to run\n", reused, len(metas), len(cells))
	}

	// emit flushes the longest completed prefix of the full grid, so
	// rows stream out in grid order no matter which worker — or which
	// earlier sweep — produced them.
	nextEmit := 0
	emit := func() {
		for nextEmit < len(rows) && rows[nextEmit] != nil {
			if err := cw.Write(rows[nextEmit]); err != nil {
				fatal(err)
			}
			nextEmit++
		}
		cw.Flush()
	}
	emit()

	failed := 0
	var prog io.Writer
	if *progress || *heartbeat > 0 {
		prog = os.Stderr
	}
	var gridObs func(engine.Progress)
	if bridge != nil {
		gridObs = bridge.PublishGrid
	}
	// OnResult fires in grid order regardless of which worker finished
	// first, so rows stream to the CSV exactly as the sequential sweep
	// emitted them.
	opts := engine.Options[machine.Metrics]{
		Exec: engine.Exec{Workers: *workers, Progress: prog, Heartbeat: *heartbeat, Observer: gridObs},
		OnResult: func(r engine.Result[machine.Metrics]) {
			idx := fullIndex[r.Index]
			m, p, met := metas[idx].m, metas[idx].p, r.Row
			var row []string
			if r.Err != nil {
				failed++
				if bridge != nil {
					bridge.Fail(r.Key, r.Err)
				}
				fmt.Fprintf(os.Stderr, "sweep: %s p=%d: %v\n", m.Name, p, r.Err)
				row = []string{m.Name, f(m.AvgDistance(tor)), strconv.Itoa(p), strconv.FormatBool(*prefetch),
					"error=" + r.Err.Error()}
				for len(row) < len(header) {
					row = append(row, "")
				}
			} else {
				row = []string{
					m.Name, f(m.AvgDistance(tor)), strconv.Itoa(p), strconv.FormatBool(*prefetch),
					f(met.MsgSize), f(met.MsgsPerTxn), f(met.InterMsgTime), f(met.MsgRate),
					f(met.MsgLatency), f(met.TxnLatency), f(met.InterTxnTime), f(met.TxnRate),
					f(met.ChannelUtilization),
				}
				if spec.Enabled() {
					row = append(row,
						strconv.FormatInt(met.Retries, 10), strconv.FormatInt(met.HomeRetries, 10),
						strconv.FormatInt(met.DroppedMsgs, 10), strconv.FormatInt(met.LinkFaultCycles, 10))
				}
			}
			rows[idx] = row
			emit()
		},
	}
	t0 := time.Now()
	_, stats := engine.Grid(ctx, cells, opts)
	if *ledger != "" {
		rec := obs.NewRunRecord("sweep")
		rec.Label = fmt.Sprintf("%s p=%s k=%d n=%d (%d cells, %d reused)", *mappingsFlag, *contextsFlag, *k, *n, len(metas), reused)
		rec.Radix, rec.Dims, rec.Nodes, rec.Mapping = *k, *n, tor.Nodes(), *mappingsFlag
		rec.Kernel, rec.Shards = kernel.String(), *shards
		rec.FillOutcome(time.Since(t0), int64(stats.Started)*(*warmup+*window))
		if failed > 0 {
			rec.Error = fmt.Sprintf("%d of %d cells failed", failed, len(cells))
		}
		if err := obs.AppendLedger(*ledger, rec); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d cells failed\n", failed, len(cells))
		os.Exit(1)
	}
}
