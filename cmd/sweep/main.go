// Command sweep runs a grid of full-system simulations — mappings ×
// context counts — and emits one CSV row of measurements per run, for
// custom studies beyond the canned figures:
//
//	sweep -mappings suite -contexts 1,2,4
//	sweep -k 4 -mappings identity,random:1,antilocal -contexts 1 -ratio 1
//	sweep -mappings random:1 -contexts 1 -prefetch -out results.csv
//	sweep -mappings suite -fault-rate 0.01 -link-mttf 5000 -fault-seed 7
//	sweep -mappings suite -contexts 1,2,4 -workers 8 -progress
//
// Columns: mapping, d, contexts, prefetch, B, g, tm, rm, Tm, Tt, tt,
// rt, utilization. With fault injection enabled (-fault-rate or
// -link-mttf), four accounting columns are appended: retries,
// home_retries, dropped, fault_cycles.
//
// The grid definition, cell configuration, and row formatting live in
// internal/sweepgrid, shared with the model-serving /v1/sweep endpoint
// and its remote workers — the same grid produces byte-identical rows
// from any of them.
//
// Cells run on -workers goroutines (default GOMAXPROCS) through the
// experiment engine; rows are still emitted in grid order, so the CSV
// is byte-identical at any worker count. A cell that fails
// (stall-report abort, configuration error, or panic) emits its row
// with error=<message> in the first measurement column; the rest of
// the grid still runs and sweep exits nonzero at the end.
//
// The output's first line is a "# kernel=<kind>" comment recording the
// execution kernel; all kernels produce bit-identical rows, but a
// resumed sweep refuses a resume file recorded under a different
// kernel rather than silently mixing provenance.
//
// Interrupted sweeps resume: -resume old.csv re-emits the completed
// rows of a partial output verbatim and runs only the cells that are
// missing, errored, or cut off mid-write. The merged output streams in
// grid order and is byte-identical to an uninterrupted sweep's
// (simulations are deterministic, so re-run cells reproduce the rows
// the interrupted sweep would have written):
//
//	sweep -mappings suite -contexts 1,2,4 -out results.csv
//	^C
//	sweep -mappings suite -contexts 1,2,4 -resume results.csv -out results2.csv
//
// Observability on long sweeps: -telemetry gives every cell its own
// metrics registry and cycle attribution (the CSV stays byte-identical
// — telemetry never touches simulated results); -slice N with
// -slice-dir writes one time-sliced sample file per cell; -trace-dir
// writes one Perfetto-loadable Chrome trace JSON per cell; -heartbeat
// prints periodic completed/total + ETA lines to stderr; -obs serves
// the live observability endpoints (/metrics Prometheus exposition,
// /statusz run status with per-cell progress and ETA, /healthz, and
// /debug/pprof) on the given address while the sweep runs; -ledger
// appends one structured run record per invocation to a JSONL ledger
// for cmd/perfcheck. -pprof is a deprecated alias for -obs, kept one
// release: the obs server includes the pprof handlers.
//
// -capture-dir writes one replayable reference trace (<cell>.lref,
// package internal/replay) per cell: the recorded streams can be
// re-run with tracetool replay or fitted with tracetool fit. Capturing
// never changes the simulated results or the CSV.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"locality/internal/engine"
	"locality/internal/faults"
	"locality/internal/machine"
	"locality/internal/obs"
	"locality/internal/replay"
	"locality/internal/sweepgrid"
	"locality/internal/telemetry"
	"locality/internal/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

func parseContexts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("sweep: bad context count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty context list %q", s)
	}
	return out, nil
}

// cellExtras is the per-cell observability configuration layered on
// top of the sweepgrid cell: telemetry, time slices, traces, capture,
// and the live bridge. None of it changes the simulated results.
type cellExtras struct {
	telemetry  bool
	slice      int64
	sliceDir   string
	sliceFmt   string
	traceDir   string
	traceCap   int
	captureDir string
	bridge     *obs.Bridge
}

// runCell builds and measures one grid cell, attaching the requested
// observability. Panics from deep inside the simulator are recovered
// by the engine, so one broken cell cannot kill the sweep.
func runCell(ctx context.Context, g *sweepgrid.Grid, i int, x cellExtras) (machine.Metrics, error) {
	cfg := g.Config(i)
	stem := g.FileStem(i)
	if x.telemetry {
		cfg.Telemetry = telemetry.New()
	}
	if x.slice > 0 {
		f, err := os.Create(filepath.Join(x.sliceDir, stem+".slices."+x.sliceFmt))
		if err != nil {
			return machine.Metrics{}, err
		}
		defer f.Close()
		writer, err := telemetry.NewSliceWriter(f, x.sliceFmt)
		if err != nil {
			return machine.Metrics{}, err
		}
		cfg.SliceEvery = x.slice
		cfg.SliceWriter = writer
	}
	if x.traceDir != "" {
		cfg.Trace = trace.New(x.traceCap)
	}
	if x.captureDir != "" {
		cfg.Capture = replay.NewCapture()
	}
	if x.bridge != nil {
		// The bridge needs a registry to snapshot; attaching one is
		// observational, so the CSV stays byte-identical either way.
		if cfg.Telemetry == nil {
			cfg.Telemetry = telemetry.New()
		}
		cfg.Observer = x.bridge.MachineObserver(g.Key(i), g.Spec.Warmup+g.Spec.Window)
	}
	mach, err := machine.New(cfg)
	if err != nil {
		return machine.Metrics{}, err
	}
	res, err := mach.Execute(ctx, machine.RunSpec{Warmup: g.Spec.Warmup, Window: g.Spec.Window})
	if err != nil {
		return machine.Metrics{}, err
	}
	met := res.Metrics
	mach.FlushSlices()
	if cfg.SliceWriter != nil {
		if err := cfg.SliceWriter.Err(); err != nil {
			return machine.Metrics{}, err
		}
	}
	if x.traceDir != "" {
		f, err := os.Create(filepath.Join(x.traceDir, stem+".trace.json"))
		if err != nil {
			return machine.Metrics{}, err
		}
		if err := telemetry.WriteChromeTrace(f, cfg.Trace.Events()); err != nil {
			f.Close()
			return machine.Metrics{}, err
		}
		if err := f.Close(); err != nil {
			return machine.Metrics{}, err
		}
	}
	if x.captureDir != "" {
		tr, err := mach.CapturedTrace(g.Spec.Warmup, g.Spec.Window)
		if err != nil {
			return machine.Metrics{}, err
		}
		if err := replay.WriteFile(filepath.Join(x.captureDir, stem+".lref"), tr); err != nil {
			return machine.Metrics{}, err
		}
	}
	return met, nil
}

// rowKey identifies a grid cell in a sweep CSV: mapping name and
// context count, the two columns that vary across the grid.
func rowKey(mappingName, contexts string) string {
	return mappingName + "\x00" + contexts
}

// resumeRows parses a partial sweep output. The kernel comment, when
// present, must name this invocation's kernel — rows swept under a
// different kernel are refused outright rather than silently mixed
// (files from sweeps predating the comment carry no kernel line and
// are accepted). The CSV header must match the current invocation's
// exactly (a mismatch means the old sweep ran with different fault
// flags and its rows are not comparable). A row cut off mid-write by
// the interruption — or anything after it — is dropped; completed rows
// are returned keyed by rowKey, later duplicates winning.
func resumeRows(r io.Reader, g *sweepgrid.Grid) (map[string][]string, error) {
	br := bufio.NewReader(r)
	if peek, _ := br.Peek(1); len(peek) == 1 && peek[0] == '#' {
		line, err := br.ReadString('\n')
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("reading resume kernel comment: %w", err)
		}
		line = strings.TrimSpace(line)
		if got, want := line, g.KernelComment(); got != want {
			return nil, fmt.Errorf("resume file was swept with %q, this sweep runs %q: refusing to mix rows from different kernels (rerun with the matching -kernel)",
				strings.TrimPrefix(got, "# kernel="), g.Kernel)
		}
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading resume header: %w", err)
	}
	if !slices.Equal(first, g.Header()) {
		return nil, fmt.Errorf("resume file header %q does not match this sweep's %q (different fault flags?)",
			strings.Join(first, ","), strings.Join(g.Header(), ","))
	}
	rows := make(map[string][]string)
	for {
		rec, err := cr.Read()
		if err != nil {
			// io.EOF is the clean end; any other error is a row the
			// interrupted sweep never finished writing.
			return rows, nil
		}
		if len(rec) < 4 {
			continue
		}
		rows[rowKey(rec[0], rec[2])] = rec
	}
}

// usableResumeRow reports whether a cached row can stand in for
// re-running its cell: full width, the exact identity prefix this
// sweep would write, and a real measurement (not an error= marker or
// padding) in the first measurement column.
func usableResumeRow(row, prefix []string, width int) bool {
	return len(row) == width &&
		slices.Equal(row[:len(prefix)], prefix) &&
		row[len(prefix)] != "" &&
		!strings.HasPrefix(row[len(prefix)], "error=")
}

func main() {
	k := flag.Int("k", 8, "torus radix")
	n := flag.Int("n", 2, "torus dimensions")
	contextsFlag := flag.String("contexts", "1", "comma-separated context counts")
	mappingsFlag := flag.String("mappings", "suite", "comma-separated mapping selectors (see internal/mapsel)")
	warmup := flag.Int64("warmup", 4000, "warmup P-cycles")
	window := flag.Int64("window", 12000, "measurement window P-cycles")
	ratio := flag.Int("ratio", 2, "network cycles per processor cycle")
	prefetch := flag.Bool("prefetch", false, "enable neighbor prefetching in the workload")
	out := flag.String("out", "", "output CSV path (default stdout)")
	faultRate := flag.Float64("fault-rate", 0, "protocol message loss probability (0 disables)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection seed")
	linkMTTF := flag.Float64("link-mttf", 0, "mean N-cycles between transient faults per link (0 disables)")
	linkStall := flag.String("link-stall", "", "link stall duration bounds, lo..hi N-cycles (default 16..256)")
	watchdog := flag.Int64("watchdog", 0, "abort a cell after this many P-cycles without progress (0 = auto when faults enabled)")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "stream per-cell progress to stderr")
	kernelFlag := flag.String("kernel", "event", "execution kernel: event (skip quiescent cycles), tick (naive reference loop), or sharded (parallel windows); rows are bit-identical either way")
	shards := flag.Int("shards", 0, "parallel shards per cell under -kernel sharded (0 = min(GOMAXPROCS, radix)); wall-clock only")
	telemetry_ := flag.Bool("telemetry", false, "per-cell metrics registry + cycle attribution (CSV output unchanged)")
	slice := flag.Int64("slice", 0, "per-cell time-sliced sampling every N P-cycles (0 disables; needs -slice-dir)")
	sliceDir := flag.String("slice-dir", "", "directory for per-cell time-slice files (implies -telemetry)")
	sliceFormat := flag.String("slice-format", "csv", "time-slice format: csv or jsonl")
	traceDir := flag.String("trace-dir", "", "directory for per-cell Chrome trace-event JSON files")
	traceCap := flag.Int("trace-cap", 1<<16, "per-cell trace ring-buffer capacity in events")
	captureDir := flag.String("capture-dir", "", "directory for per-cell replayable reference traces (.lref)")
	heartbeat := flag.Duration("heartbeat", 0, "periodic progress/ETA line interval on stderr (0 disables)")
	obsAddr := flag.String("obs", "", "serve live observability (/metrics, /statusz, /healthz, /debug/pprof) on this address, e.g. localhost:9090")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -obs (will be removed next release; the obs server serves /debug/pprof)")
	ledger := flag.String("ledger", "", "append a structured run record to this JSONL ledger (e.g. ledger.jsonl)")
	resume := flag.String("resume", "", "partial output CSV from an interrupted sweep: reuse its completed rows, run only missing or errored cells")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		fmt.Fprintln(os.Stderr, "sweep: -pprof is deprecated, use -obs (same address, adds /metrics, /statusz, /healthz)")
		if *obsAddr == "" {
			*obsAddr = *pprofAddr
		}
	}
	var bridge *obs.Bridge
	if *obsAddr != "" {
		bridge = obs.NewBridge()
		srv, err := obs.NewServer(*obsAddr, bridge)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: observability at http://%s/\n", srv.Addr())
	}
	if *slice > 0 && *sliceDir == "" {
		fatal(fmt.Errorf("-slice requires -slice-dir"))
	}
	if *sliceDir != "" {
		if *slice <= 0 {
			fatal(fmt.Errorf("-slice-dir requires -slice > 0"))
		}
		*telemetry_ = true
		if err := os.MkdirAll(*sliceDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *captureDir != "" {
		if err := os.MkdirAll(*captureDir, 0o755); err != nil {
			fatal(err)
		}
	}

	contexts, err := parseContexts(*contextsFlag)
	if err != nil {
		fatal(err)
	}
	spec := sweepgrid.Spec{
		Radix: *k, Dims: *n, Contexts: contexts, Mappings: *mappingsFlag,
		Warmup: *warmup, Window: *window, Ratio: *ratio, Prefetch: *prefetch,
		Kernel: *kernelFlag, Shards: *shards,
		FaultRate: *faultRate, FaultSeed: *faultSeed, LinkMTTF: *linkMTTF,
		Watchdog: *watchdog,
	}
	if *linkStall != "" {
		stall, err := faults.ParseSpec("stall=" + *linkStall)
		if err != nil {
			fatal(err)
		}
		spec.StallMin, spec.StallMax = stall.StallMin, stall.StallMax
	}
	g, err := sweepgrid.New(spec)
	if err != nil {
		fatal(err)
	}

	// Read the resume file in full before creating the output: -out and
	// -resume may name the same path.
	cached := map[string][]string{}
	if *resume != "" {
		rf, err := os.Open(*resume)
		if err != nil {
			fatal(err)
		}
		cached, err = resumeRows(rf, g)
		rf.Close()
		if err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	// The kernel comment precedes the CSV header so resumed sweeps can
	// refuse rows produced under a different kernel.
	if _, err := fmt.Fprintln(w, g.KernelComment()); err != nil {
		fatal(err)
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write(g.Header()); err != nil {
		fatal(err)
	}

	// The grid streams in sweepgrid's cell order (contexts-major,
	// mappings-minor). Cells whose rows the resume file already holds
	// are prefilled and never run; the rest are submitted to the engine
	// with their position in the full grid remembered, so the merged
	// output streams in grid order.
	extras := cellExtras{
		telemetry: *telemetry_, slice: *slice, sliceDir: *sliceDir, sliceFmt: *sliceFormat,
		traceDir: *traceDir, traceCap: *traceCap, captureDir: *captureDir, bridge: bridge,
	}
	var fullIndex []int // submitted cell -> full-grid position
	rows := make([][]string, g.Len())
	var cells []engine.Cell[machine.Metrics]
	reused := 0
	for i := 0; i < g.Len(); i++ {
		i := i
		_, p := g.Cell(i)
		if row, ok := cached[rowKey(g.Prefix(i)[0], strconv.Itoa(p))]; ok && usableResumeRow(row, g.Prefix(i), len(g.Header())) {
			rows[i] = row
			reused++
			continue
		}
		fullIndex = append(fullIndex, i)
		cells = append(cells, engine.Cell[machine.Metrics]{
			Key: g.Key(i),
			Run: func(ctx context.Context) (machine.Metrics, error) {
				return runCell(ctx, g, i, extras)
			},
		})
	}
	if *resume != "" {
		fmt.Fprintf(os.Stderr, "sweep: resuming: %d of %d rows reused, %d to run\n", reused, g.Len(), len(cells))
	}

	// emit flushes the longest completed prefix of the full grid, so
	// rows stream out in grid order no matter which worker — or which
	// earlier sweep — produced them.
	nextEmit := 0
	emit := func() {
		for nextEmit < len(rows) && rows[nextEmit] != nil {
			if err := cw.Write(rows[nextEmit]); err != nil {
				fatal(err)
			}
			nextEmit++
		}
		cw.Flush()
	}
	emit()

	failed := 0
	var prog io.Writer
	if *progress || *heartbeat > 0 {
		prog = os.Stderr
	}
	var gridObs func(engine.Progress)
	if bridge != nil {
		gridObs = bridge.PublishGrid
	}
	// OnResult fires in grid order regardless of which worker finished
	// first, so rows stream to the CSV exactly as the sequential sweep
	// emitted them.
	opts := engine.Options[machine.Metrics]{
		Exec: engine.Exec{Workers: *workers, Progress: prog, Heartbeat: *heartbeat, Observer: gridObs},
		OnResult: func(r engine.Result[machine.Metrics]) {
			idx := fullIndex[r.Index]
			if r.Err != nil {
				failed++
				if bridge != nil {
					bridge.Fail(r.Key, r.Err)
				}
				fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", r.Key, r.Err)
				rows[idx] = g.ErrorRow(idx, r.Err)
			} else {
				rows[idx] = g.FormatRow(idx, r.Row)
			}
			emit()
		},
	}
	t0 := time.Now()
	_, stats := engine.Grid(ctx, cells, opts)
	if *ledger != "" {
		rec := obs.NewRunRecord("sweep")
		rec.Label = fmt.Sprintf("%s p=%s k=%d n=%d (%d cells, %d reused)", *mappingsFlag, *contextsFlag, *k, *n, g.Len(), reused)
		rec.Radix, rec.Dims, rec.Nodes, rec.Mapping = *k, *n, g.Tor.Nodes(), *mappingsFlag
		rec.Kernel, rec.Shards = g.Kernel.String(), *shards
		rec.FillOutcome(time.Since(t0), int64(stats.Started)*(*warmup+*window))
		if failed > 0 {
			rec.Error = fmt.Sprintf("%d of %d cells failed", failed, len(cells))
		}
		if err := obs.AppendLedger(*ledger, rec); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d cells failed\n", failed, len(cells))
		os.Exit(1)
	}
}
