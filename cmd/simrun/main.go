// Command simrun executes one full-system simulation — multithreaded
// processors, coherent caches, directory protocol, and wormhole torus
// network — running the synthetic relaxation workload, and prints the
// measured quantities the paper's models consume.
//
//	simrun -k 8 -n 2 -contexts 2 -mapping random:1
//	simrun -mapping diag:3 -window 40000
//	simrun -mapping antilocal -contexts 4 -ratio 1
//
// Mapping selectors are parsed by internal/mapsel: identity,
// transpose, bitrev, antilocal[:seed], local[:seed], diag[:shift],
// dilation[:factor], rowshuffle[:seed], random[:seed].
package main

import (
	"flag"
	"fmt"
	"os"

	"locality/internal/machine"
	"locality/internal/mapsel"
	"locality/internal/topology"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrun:", err)
	os.Exit(1)
}

func main() {
	k := flag.Int("k", 8, "torus radix")
	n := flag.Int("n", 2, "torus dimensions")
	contexts := flag.Int("contexts", 1, "hardware contexts per processor")
	mapSel := flag.String("mapping", "identity", "thread-to-processor mapping selector")
	warmup := flag.Int64("warmup", 5000, "warmup P-cycles (excluded from measurement)")
	window := flag.Int64("window", 20000, "measurement window P-cycles")
	ratio := flag.Int("ratio", 2, "network cycles per processor cycle")
	buffers := flag.Int("buffers", 8, "switch buffer depth per virtual channel (flits)")
	pointers := flag.Int("pointers", 0, "directory hardware sharer pointers (0 = full map)")
	flag.Parse()

	tor, err := topology.New(*k, *n)
	if err != nil {
		fatal(err)
	}
	m, err := mapsel.Parse(tor, *mapSel)
	if err != nil {
		fatal(err)
	}
	cfg := machine.DefaultConfig(tor, m, *contexts)
	cfg.ClockRatio = *ratio
	cfg.BufferDepth = *buffers
	cfg.HWPointers = *pointers
	mach, err := machine.New(cfg)
	if err != nil {
		fatal(err)
	}
	met := mach.RunMeasured(*warmup, *window)

	fmt.Printf("machine                  %v, %d context(s), network %dx processor clock\n", tor, *contexts, *ratio)
	fmt.Printf("mapping                  %s (d = %.2f hops)\n", m.Name, m.AvgDistance(tor))
	fmt.Printf("window                   %d P-cycles (%d N-cycles) after %d warmup\n", met.PCycles, met.NCycles, *warmup)
	fmt.Printf("transactions             %d\n", met.Transactions)
	fmt.Printf("fabric messages          %d\n", met.Messages)
	fmt.Printf("avg communication dist   %.2f hops\n", met.AvgDistance)
	fmt.Printf("avg message size B       %.2f flits\n", met.MsgSize)
	fmt.Printf("messages/transaction g   %.2f\n", met.MsgsPerTxn)
	fmt.Printf("inter-message time tm    %.2f N-cycles\n", met.InterMsgTime)
	fmt.Printf("message rate rm          %.5f msgs/N-cycle/node\n", met.MsgRate)
	fmt.Printf("message latency Tm       %.2f N-cycles\n", met.MsgLatency)
	fmt.Printf("transaction latency Tt   %.2f P-cycles\n", met.TxnLatency)
	fmt.Printf("inter-transaction tt     %.2f P-cycles\n", met.InterTxnTime)
	fmt.Printf("transaction rate rt      %.5f txns/P-cycle/proc\n", met.TxnRate)
	fmt.Printf("channel utilization      %.3f\n", met.ChannelUtilization)
	if met.SWTraps > 0 {
		fmt.Printf("LimitLESS traps          %d\n", met.SWTraps)
	}
}
