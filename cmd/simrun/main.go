// Command simrun executes one full-system simulation — multithreaded
// processors, coherent caches, directory protocol, and wormhole torus
// network — running the synthetic relaxation workload, and prints the
// measured quantities the paper's models consume.
//
//	simrun -k 8 -n 2 -contexts 2 -mapping random:1
//	simrun -mapping diag:3 -window 40000
//	simrun -mapping antilocal -contexts 4 -ratio 1
//	simrun -mapping random:1 -fault-rate 0.01 -link-mttf 5000
//	simrun -k 16 -kernel sharded -shards 4
//	simrun -mapping random:1 -telemetry
//	simrun -mapping random:1 -trace-out trace.json -slice 1000 -slice-out slices.csv
//	simrun -window 2000000 -checkpoint-every 100000 -checkpoint-dir ckpts -checkpoint-keep 4
//	simrun -window 2000000 -restore ckpts/ckpt-1500000.lckp
//
// With fault injection enabled the run additionally reports loss and
// retry accounting; a run that stops making progress aborts with a
// diagnostic stall report and exit status 2.
//
// Crash recovery: -checkpoint-every writes a deterministic snapshot of
// the complete machine state every N P-cycles (atomic .lckp files in
// -checkpoint-dir, pruned to the newest -checkpoint-keep). With a
// checkpoint directory configured, Ctrl-C writes a final snapshot
// before exiting and a watchdog stall writes an emergency one named in
// the stall report. -restore resumes a run from a snapshot — the other
// flags must describe the same machine, which is enforced — and
// produces output byte-identical to the uninterrupted run.
//
// Observability: -telemetry appends the metrics-registry dump and the
// per-component cycle-attribution breakdown to the report; -analyze
// appends the ranked bottleneck report (implies -telemetry); -obs
// serves /metrics (Prometheus), /statusz, /healthz, and /debug/pprof
// on the given address for the duration of the run; -ledger appends
// one structured run record to a JSONL ledger that cmd/perfcheck
// gates regressions against; -trace-out writes a Chrome trace-event
// JSON (load it in Perfetto or chrome://tracing) of message flows,
// transactions, and kernel-skip spans; -slice streams time-sliced
// interval samples (utilization, queue depths, skip ratio, fault
// state) to -slice-out as CSV or JSONL. None of these change the
// simulated results; without them the output is byte-identical to an
// uninstrumented run.
//
// Mapping selectors are parsed by internal/mapsel: identity,
// transpose, bitrev, antilocal[:seed], local[:seed], diag[:shift],
// dilation[:factor], rowshuffle[:seed], random[:seed].
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"locality/internal/checkpoint"
	"locality/internal/faults"
	"locality/internal/machine"
	"locality/internal/mapsel"
	"locality/internal/obs"
	"locality/internal/report"
	"locality/internal/sim"
	"locality/internal/telemetry"
	"locality/internal/topology"
	"locality/internal/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrun:", err)
	os.Exit(1)
}

func main() {
	k := flag.Int("k", 8, "torus radix")
	n := flag.Int("n", 2, "torus dimensions")
	contexts := flag.Int("contexts", 1, "hardware contexts per processor")
	mapSel := flag.String("mapping", "identity", "thread-to-processor mapping selector")
	warmup := flag.Int64("warmup", 5000, "warmup P-cycles (excluded from measurement)")
	window := flag.Int64("window", 20000, "measurement window P-cycles")
	ratio := flag.Int("ratio", 2, "network cycles per processor cycle")
	buffers := flag.Int("buffers", 8, "switch buffer depth per virtual channel (flits)")
	pointers := flag.Int("pointers", 0, "directory hardware sharer pointers (0 = full map)")
	faultRate := flag.Float64("fault-rate", 0, "protocol message loss probability (0 disables)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection seed")
	linkMTTF := flag.Float64("link-mttf", 0, "mean N-cycles between transient faults per link (0 disables)")
	watchdog := flag.Int64("watchdog", 0, "abort after this many P-cycles without progress (0 = auto when faults enabled)")
	kernelFlag := flag.String("kernel", "event", "execution kernel: event (skip quiescent cycles), tick (naive reference loop), or sharded (parallel windows); results are bit-identical")
	shards := flag.Int("shards", 0, "parallel shards under -kernel sharded (0 = min(GOMAXPROCS, radix)); affects wall-clock speed only")
	shardDim := flag.Int("shard-dim", 0, "torus dimension the shard slabs cut across")
	telemetry_ := flag.Bool("telemetry", false, "enable the metrics registry and cycle attribution; dump both after the run")
	analyze := flag.Bool("analyze", false, "append the ranked bottleneck report after the run (implies -telemetry)")
	obsAddr := flag.String("obs", "", "serve live observability (/metrics, /statusz, /healthz, /debug/pprof) on this address, e.g. localhost:9090")
	ledger := flag.String("ledger", "", "append a structured run record to this JSONL ledger (e.g. ledger.jsonl)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run to this path (implies tracing)")
	traceCap := flag.Int("trace-cap", 1<<16, "trace ring-buffer capacity in events")
	slice := flag.Int64("slice", 0, "emit one time-sliced sample every N P-cycles (0 disables; implies -telemetry)")
	sliceOut := flag.String("slice-out", "", "time-slice output path (default stderr)")
	sliceFormat := flag.String("slice-format", "csv", "time-slice format: csv or jsonl")
	ckptEvery := flag.Int64("checkpoint-every", 0, "write a state snapshot every N P-cycles (0 disables)")
	ckptDir := flag.String("checkpoint-dir", "", "snapshot directory (default \".\" when -checkpoint-every is set); also enables snapshots on interrupt and stall")
	ckptKeep := flag.Int("checkpoint-keep", 0, "retain only the newest N periodic snapshots (0 keeps all)")
	restore := flag.String("restore", "", "resume from a .lckp snapshot written by a run with identical machine flags")
	flag.Parse()

	tor, err := topology.New(*k, *n)
	if err != nil {
		fatal(err)
	}
	m, err := mapsel.Parse(tor, *mapSel)
	if err != nil {
		fatal(err)
	}
	spec := faults.Spec{Seed: *faultSeed, LossRate: *faultRate, LinkMTTF: *linkMTTF}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	kernel, err := sim.ParseKernel(*kernelFlag)
	if err != nil {
		fatal(err)
	}
	cfg := machine.DefaultConfig(tor, m, *contexts)
	cfg.Kernel = kernel
	cfg.Shards = *shards
	cfg.ShardDim = *shardDim
	cfg.ClockRatio = *ratio
	cfg.BufferDepth = *buffers
	cfg.HWPointers = *pointers
	if spec.Enabled() {
		cfg.Faults = &spec
	}
	cfg.Watchdog = faults.Watchdog{StallCycles: *watchdog}
	if *watchdog == 0 && spec.Enabled() {
		cfg.Watchdog.StallCycles = 20 * (*warmup + *window)
	}
	if *traceOut != "" {
		cfg.Trace = trace.New(*traceCap)
	}
	if *slice > 0 {
		*telemetry_ = true
		sw := os.Stderr
		if *sliceOut != "" {
			f, err := os.Create(*sliceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			sw = f
		}
		writer, err := telemetry.NewSliceWriter(sw, *sliceFormat)
		if err != nil {
			fatal(err)
		}
		cfg.SliceEvery = *slice
		cfg.SliceWriter = writer
	}
	if *analyze {
		*telemetry_ = true
	}
	// The obs server needs a registry to expose, but -obs alone does
	// not add the textual dump to the report: stdout stays
	// byte-identical to an unobserved run.
	if *telemetry_ || *obsAddr != "" {
		cfg.Telemetry = telemetry.New()
	}
	if *ckptEvery > 0 && *ckptDir == "" {
		*ckptDir = "."
	}
	cfg.Checkpoint = machine.CheckpointSpec{Every: *ckptEvery, Dir: *ckptDir, Keep: *ckptKeep}

	label := fmt.Sprintf("%s k=%d n=%d p=%d", *mapSel, *k, *n, *contexts)
	var bridge *obs.Bridge
	if *obsAddr != "" {
		bridge = obs.NewBridge()
		srv, err := obs.NewServer(*obsAddr, bridge)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "simrun: observability at http://%s/\n", srv.Addr())
		cfg.Observer = bridge.MachineObserver(label, *warmup+*window)
	}

	var mach *machine.Machine
	if *restore != "" {
		ck, err := checkpoint.ReadFile(*restore)
		if err != nil {
			fatal(err)
		}
		mach, err = machine.RestoreFrom(cfg, ck)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "simrun: resuming from %s at P-cycle %d\n", *restore, mach.Now())
	} else {
		var err error
		mach, err = machine.New(cfg)
		if err != nil {
			fatal(err)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// writeLedger appends this run's record — success or failure — so
	// the ledger is a complete history, not a survivor's log.
	writeLedger := func(met *machine.Metrics, runErr error, wall time.Duration) {
		if *ledger == "" {
			return
		}
		rec := obs.NewRunRecord("simrun")
		rec.Label = label
		rec.Kernel = kernel.String()
		rec.Shards = *shards
		rec.FillMachine(mach)
		rec.FillOutcome(wall, mach.Now())
		if runErr != nil {
			rec.Error = runErr.Error()
		}
		rec.Metrics = met
		if err := obs.AppendLedger(*ledger, rec); err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
		}
	}

	t0 := time.Now()
	res, err := mach.Execute(ctx, machine.RunSpec{Warmup: *warmup, Window: *window, ResumeFrom: true})
	met := res.Metrics
	if err != nil {
		if bridge != nil {
			bridge.Fail("machine", err)
		}
		writeLedger(nil, err, time.Since(t0))
		var rep *faults.StallReport
		if errors.As(err, &rep) {
			fmt.Fprintf(os.Stderr, "simrun: %v\ndiagnostic snapshot:\n%s\n", rep, rep.Snapshot)
			if rep.Checkpoint != "" {
				fmt.Fprintf(os.Stderr, "emergency checkpoint: %s (resume with -restore after raising -watchdog)\n", rep.Checkpoint)
			}
			os.Exit(2)
		}
		if p := mach.LastCheckpoint(); p != "" && errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "simrun: interrupted; checkpoint written to %s (resume with -restore)\n", p)
		}
		fatal(err)
	}
	writeLedger(&met, nil, time.Since(t0))

	fmt.Printf("machine                  %v, %d context(s), network %dx processor clock\n", tor, *contexts, *ratio)
	fmt.Printf("mapping                  %s (d = %.2f hops)\n", m.Name, m.AvgDistance(tor))
	fmt.Printf("window                   %d P-cycles (%d N-cycles) after %d warmup\n", met.PCycles, met.NCycles, *warmup)
	fmt.Printf("transactions             %d\n", met.Transactions)
	fmt.Printf("fabric messages          %d\n", met.Messages)
	fmt.Printf("avg communication dist   %.2f hops\n", met.AvgDistance)
	fmt.Printf("avg message size B       %.2f flits\n", met.MsgSize)
	fmt.Printf("messages/transaction g   %.2f\n", met.MsgsPerTxn)
	fmt.Printf("inter-message time tm    %.2f N-cycles\n", met.InterMsgTime)
	fmt.Printf("message rate rm          %.5f msgs/N-cycle/node\n", met.MsgRate)
	fmt.Printf("message latency Tm       %.2f N-cycles\n", met.MsgLatency)
	fmt.Printf("transaction latency Tt   %.2f P-cycles\n", met.TxnLatency)
	fmt.Printf("inter-transaction tt     %.2f P-cycles\n", met.InterTxnTime)
	fmt.Printf("transaction rate rt      %.5f txns/P-cycle/proc\n", met.TxnRate)
	fmt.Printf("channel utilization      %.3f\n", met.ChannelUtilization)
	fmt.Printf("kernel                   %s: %d cycles executed, %d skipped (%.1f%% skip ratio)\n",
		kernel, met.CyclesTicked, met.CyclesSkipped, 100*met.SkipRatio())
	if kernel == sim.KernelSharded {
		fmt.Printf("parallel windows         %d\n", mach.ShardWindows())
	}
	if met.SWTraps > 0 {
		fmt.Printf("LimitLESS traps          %d\n", met.SWTraps)
	}
	if spec.Enabled() {
		fmt.Printf("fault spec               %s\n", spec.String())
		fmt.Printf("messages dropped         %d\n", met.DroppedMsgs)
		fmt.Printf("request retries          %d (+%d home-side)\n", met.Retries, met.HomeRetries)
		fmt.Printf("link fault cycles        %d channel·N-cycles\n", met.LinkFaultCycles)
	}
	mach.FlushSlices()
	if cfg.SliceWriter != nil {
		if err := cfg.SliceWriter.Err(); err != nil {
			fatal(err)
		}
	}
	if *telemetry_ {
		attr := mach.Attribution()
		fmt.Printf("cycle attribution        %s (total %d)\n", attr, attr.Total())
		fmt.Printf("telemetry registry:\n")
		if err := cfg.Telemetry.Dump(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *analyze {
		report.RenderBottlenecks(os.Stdout, cfg.Telemetry.Export())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.WriteChromeTrace(f, cfg.Trace.Events()); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}
