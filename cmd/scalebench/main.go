// Command scalebench runs the gain-vs-N scaling experiment on machine
// sizes up to and beyond 10⁵ nodes and writes the measured curve as
// JSON. The largest default cell is a 320×320 torus — 102 400 nodes,
// two orders of magnitude past the paper's 64-node simulations — made
// runnable by the active-router worklist and the sparse per-node
// state: the machine's construction cost and resident memory track the
// state actually touched, and the fabric's per-cycle cost tracks the
// flits actually in flight.
//
//	scalebench -out BENCH_scale.json
//	scalebench -radices 32,100 -window 2000   # quick smoke
//	scalebench -obs localhost:9090 -ledger ledger.jsonl
//
// -obs serves the live observability endpoints (/metrics, /statusz,
// /healthz, /debug/pprof) for the duration of the run — on the large
// cells a scrape shows the current cycle, rate, and ETA instead of a
// silent multi-minute wait. -ledger appends one structured run record
// per machine size for cmd/perfcheck to gate regressions against.
//
// Each machine size simulates the ideal and random placements back to
// back and pairs the measured gain with the analytic model's
// prediction (core.Solve) at the same grain and distance. The report
// records wall-clock and peak heap per cell so regressions in the
// large-N path show up as numbers, plus GOMAXPROCS/NumCPU so timings
// are read against the host that produced them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"locality/internal/experiments"
	"locality/internal/machine"
	"locality/internal/obs"
	"locality/internal/telemetry"
)

// cellResult is one machine size's measurement plus its cost.
type cellResult struct {
	Radix          int     `json:"radix"`
	Nodes          int     `json:"nodes"`
	RandomD        float64 `json:"random_avg_distance"`
	IdealInterTxn  float64 `json:"ideal_inter_txn_pcycles"`
	RandomInterTxn float64 `json:"random_inter_txn_pcycles"`
	MeasuredGain   float64 `json:"measured_gain"`
	ModelGain      float64 `json:"model_gain"`
	WallSeconds    float64 `json:"wall_seconds"`
	HeapPeakMB     float64 `json:"heap_peak_mb"`
}

// result is the JSON report.
type result struct {
	Contexts   int          `json:"contexts"`
	Compute    int          `json:"compute_cycles"`
	Warmup     int64        `json:"warmup_pcycles"`
	Window     int64        `json:"window_pcycles"`
	Seed       int64        `json:"seed"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Results    []cellResult `json:"results"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scalebench:", err)
	os.Exit(1)
}

// parseRadices parses a comma-separated radix list.
func parseRadices(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad radix %q: %w", f, err)
		}
		out = append(out, k)
	}
	return out, nil
}

// heapPeakMB reports the current live-heap high-water estimate.
func heapPeakMB() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapInuse) / (1 << 20)
}

func main() {
	out := flag.String("out", "BENCH_scale.json", "output JSON path")
	radices := flag.String("radices", "32,100,320", "comma-separated torus side lengths")
	contexts := flag.Int("contexts", 1, "hardware contexts per processor")
	compute := flag.Int("compute", 4000, "workload compute burst (P-cycles)")
	warmup := flag.Int64("warmup", 4000, "warmup P-cycles per run")
	window := flag.Int64("window", 8000, "measured P-cycles per run")
	seed := flag.Int64("seed", 1, "random-mapping seed")
	obsAddr := flag.String("obs", "", "serve live observability (/metrics, /statusz, /healthz, /debug/pprof) on this address, e.g. localhost:9090")
	ledger := flag.String("ledger", "", "append a structured run record per machine size to this JSONL ledger (e.g. ledger.jsonl)")
	flag.Parse()

	ks, err := parseRadices(*radices)
	if err != nil {
		fatal(err)
	}
	cfg := experiments.DefaultGainScaleConfig()
	cfg.Contexts = *contexts
	cfg.Compute = *compute
	cfg.Warmup = *warmup
	cfg.Window = *window
	cfg.Seed = *seed

	if *obsAddr != "" {
		bridge := obs.NewBridge()
		srv, err := obs.NewServer(*obsAddr, bridge)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "scalebench: observability at http://%s/\n", srv.Addr())
		cfg.Instrument = func(label string, mc *machine.Config) {
			mc.Telemetry = telemetry.New()
			mc.Observer = bridge.MachineObserver(label, cfg.Warmup+cfg.Window)
		}
	}

	res := result{
		Contexts: cfg.Contexts, Compute: cfg.Compute,
		Warmup: cfg.Warmup, Window: cfg.Window, Seed: cfg.Seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	ctx := context.Background()
	// One size at a time, sequentially: the big cells are memory- and
	// cache-bound, and per-cell wall clock is part of the report.
	for _, k := range ks {
		cfg.Radices = []int{k}
		t0 := time.Now()
		rows, err := experiments.RunGainScale(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(t0).Seconds()
		r := rows[0]
		res.Results = append(res.Results, cellResult{
			Radix: r.Radix, Nodes: r.Nodes, RandomD: r.RandomD,
			IdealInterTxn: r.IdealInterTxn, RandomInterTxn: r.RandomInterTxn,
			MeasuredGain: r.MeasuredGain, ModelGain: r.ModelGain,
			WallSeconds: wall, HeapPeakMB: heapPeakMB(),
		})
		fmt.Printf("k=%-4d N=%-7d d̄=%6.2f  gain %.3f (model %.3f)  %5.1fs  heap %.0f MB\n",
			r.Radix, r.Nodes, r.RandomD, r.MeasuredGain, r.ModelGain, wall, heapPeakMB())
		if *ledger != "" {
			rec := obs.NewRunRecord("scalebench")
			rec.Label = fmt.Sprintf("gainscale k=%d", k)
			rec.Radix, rec.Dims, rec.Nodes, rec.Contexts = r.Radix, 2, r.Nodes, cfg.Contexts
			// Two placements simulated back to back per cell.
			rec.FillOutcome(time.Duration(wall*float64(time.Second)), 2*(cfg.Warmup+cfg.Window))
			if err := obs.AppendLedger(*ledger, rec); err != nil {
				fmt.Fprintln(os.Stderr, "scalebench:", err)
			}
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("GOMAXPROCS %d, NumCPU %d → %s\n", res.GOMAXPROCS, res.NumCPU, *out)
}
