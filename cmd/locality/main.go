// Command locality is the CLI front end to the combined analytical
// model. Subcommands:
//
//	locality predict   -contexts 2 -d 4.06        # solve one operating point
//	locality gain      -contexts 1 -nodes 1000    # locality gain at a machine size
//	locality limit     -contexts 2                # asymptotic per-hop latency
//	locality breakdown -contexts 2 -nodes 1000    # Equation 18 decomposition
//	locality sweep     -contexts 1 -from 10 -to 1e6 -perdecade 2
//
// Common flags adjust the Alewife-calibrated preset: -grain, -switch,
// -fixed, -msgsize, -dims, -speed (network clock relative to the base
// architecture), -chancont (model node-channel contention), -floor
// (enforce the Equation 4 issue-time floor).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"

	"locality/internal/core"
	"locality/internal/engine"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: locality <predict|gain|limit|breakdown|sweep> [flags]")
	fmt.Fprintln(os.Stderr, "run 'locality <subcommand> -h' for the flag list")
	os.Exit(2)
}

// modelFlags registers the shared model-configuration flags on fs and
// returns a builder that assembles the Config after parsing.
func modelFlags(fs *flag.FlagSet) func() core.Config {
	contexts := fs.Int("contexts", 1, "hardware contexts p")
	d := fs.Float64("d", 1, "average communication distance in hops")
	grain := fs.Float64("grain", core.AlewifeGrain, "computation grain Tr (P-cycles)")
	switchT := fs.Float64("switch", core.AlewifeSwitchTime, "context switch time Tc (P-cycles)")
	fixed := fs.Float64("fixed", core.AlewifeFixedOverhead, "fixed transaction overhead Tf (P-cycles)")
	msgSize := fs.Float64("msgsize", core.AlewifeMsgSize, "average message size B (flits)")
	dims := fs.Int("dims", core.AlewifeDims, "mesh dimension n")
	speed := fs.Float64("speed", 1, "network speed relative to the base architecture")
	chanCont := fs.Bool("chancont", false, "model node-channel contention")
	floor := fs.Bool("floor", false, "enforce the Equation 4 issue-time floor")
	return func() core.Config {
		cfg := core.Alewife(*contexts, *d)
		cfg.App.Grain = *grain
		cfg.App.SwitchTime = *switchT
		cfg.Txn.FixedOverhead = *fixed
		cfg.Net.MsgSize = *msgSize
		cfg.Net.Dims = *dims
		cfg.Net.NodeChannelContention = *chanCont
		cfg.AssumeUnmasked = !*floor
		return cfg.WithNetworkSpeed(*speed)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "locality:", err)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	sub, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	build := modelFlags(fs)
	nodes := fs.Float64("nodes", 1000, "machine size N (gain/breakdown/sweep)")
	from := fs.Float64("from", 10, "sweep start size")
	to := fs.Float64("to", 1e6, "sweep end size")
	perDecade := fs.Int("perdecade", 2, "sweep points per decade")
	workers := fs.Int("workers", 0, "parallel model solves for sweep (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	cfg := build()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch sub {
	case "predict":
		sol, err := cfg.Solve()
		if err != nil {
			fatal(err)
		}
		printSolution(cfg, sol)
	case "gain":
		g, err := core.ExpectedGain(cfg, *nodes)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("machine size N          %.0f\n", g.Nodes)
		fmt.Printf("random-mapping d        %.2f hops (Equation 17)\n", g.RandomDistance)
		fmt.Printf("ideal-mapping tt        %.1f P-cycles\n", g.Ideal.IssueTime)
		fmt.Printf("random-mapping tt       %.1f P-cycles\n", g.Random.IssueTime)
		fmt.Printf("expected locality gain  %.2fx\n", g.Gain)
	case "limit":
		fmt.Printf("latency sensitivity s   %.3f\n", cfg.Node().Sensitivity())
		fmt.Printf("hop latency limit Th∞   %.2f N-cycles  (B·s/2n, Equation 16)\n", core.HopLatencyLimit(cfg))
	case "breakdown":
		d := core.RandomMappingDistance(cfg.Net.Dims, *nodes)
		for _, tc := range []struct {
			name string
			dist float64
		}{{"ideal", 1}, {"random", d}} {
			c := cfg.WithDistance(tc.dist)
			sol, err := c.Solve()
			if err != nil {
				fatal(err)
			}
			b := c.DecomposeIssueTime(sol)
			fmt.Printf("%s mapping (d=%.2f): tt = %.1f P-cycles\n", tc.name, tc.dist, sol.IssueTime)
			fmt.Printf("  variable message   %.1f\n", b.VariableMessage)
			fmt.Printf("  fixed message      %.1f\n", b.FixedMessage)
			fmt.Printf("  fixed transaction  %.1f\n", b.FixedTransaction)
			fmt.Printf("  CPU                %.1f\n", b.CPU)
		}
	case "sweep":
		// One engine cell per machine size; results come back in grid
		// order, so the table matches the sequential sweep exactly.
		sizes := core.LogSizes(*from, *to, *perDecade)
		cells := make([]engine.Cell[core.GainResult], len(sizes))
		for i, n := range sizes {
			n := n
			cells[i] = engine.Cell[core.GainResult]{
				Key: fmt.Sprintf("gain N=%g", n),
				Run: func(ctx context.Context) (core.GainResult, error) {
					return core.ExpectedGain(cfg, n)
				},
			}
		}
		results, _ := engine.Grid(ctx, cells, engine.Options[core.GainResult]{Exec: engine.Exec{Workers: *workers}})
		rows, err := engine.Rows(results)
		if err != nil {
			fatal(err)
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "N\td(random)\tgain\tTh(random)\tutilization")
		for _, r := range rows {
			fmt.Fprintf(tw, "%.0f\t%.2f\t%.2f\t%.2f\t%.3f\n",
				r.Nodes, r.RandomDistance, r.Gain, r.Random.HopLatency, r.Random.Utilization)
		}
		tw.Flush()
	default:
		usage()
	}
}

func printSolution(cfg core.Config, sol core.Solution) {
	fmt.Printf("latency sensitivity s    %.3f\n", cfg.Node().Sensitivity())
	fmt.Printf("message rate rm          %.5f msgs/N-cycle/node\n", sol.MsgRate)
	fmt.Printf("inter-message time tm    %.1f N-cycles\n", sol.MsgTime)
	fmt.Printf("message latency Tm       %.1f N-cycles\n", sol.MsgLatency)
	fmt.Printf("per-hop latency Th       %.2f N-cycles\n", sol.HopLatency)
	fmt.Printf("channel utilization ρ    %.3f\n", sol.Utilization)
	fmt.Printf("transaction latency Tt   %.1f P-cycles\n", sol.TxnLatency)
	fmt.Printf("issue time tt            %.1f P-cycles\n", sol.IssueTime)
	fmt.Printf("transaction rate rt      %.5f txns/P-cycle/proc\n", sol.TxnRate)
	if sol.Masked {
		fmt.Println("regime                   latency fully masked (issue floor)")
	}
}
