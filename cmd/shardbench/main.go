// Command shardbench measures the sharded kernel's wall-clock scaling
// on its best-case workload — the read-share application on a 16×16
// torus, where steady state is pure cache hits and the conservative-
// lookahead windows are maximal — and writes the comparison as JSON.
//
//	shardbench -out BENCH_sharded.json
//	shardbench -min-speedup 1.0   # exit 1 unless 4 shards beat 1 shard
//
// Each shard count runs the same machine for -cycles P-cycles, -reps
// times; the fastest repetition wins, which filters scheduler noise
// the way testing.B's minimum-style reporting does. Shard goroutines
// only buy wall-clock time when GOMAXPROCS > 1 — the report records
// GOMAXPROCS and NumCPU so a flat curve on a one-core host reads as
// what it is. Results are bit-identical at every shard count
// (TestKernelParity); this command measures speed only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"locality/internal/machine"
	"locality/internal/mapping"
	"locality/internal/topology"
	"locality/internal/workload"
)

// shardResult is one shard count's best-of-reps measurement.
type shardResult struct {
	Shards       int     `json:"shards"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Windows is the number of parallel windows the measured run opened.
	Windows int64   `json:"windows"`
	Speedup float64 `json:"speedup_vs_1_shard"`
}

// result is the JSON report.
type result struct {
	Nodes      int           `json:"nodes"`
	Contexts   int           `json:"contexts"`
	Compute    int           `json:"compute_cycles"`
	Lookahead  int           `json:"lookahead_pcycles"`
	Cycles     int64         `json:"measured_pcycles"`
	Reps       int           `json:"reps"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Results    []shardResult `json:"results"`
	MinSpeedup float64       `json:"min_speedup_at_4"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shardbench:", err)
	os.Exit(1)
}

func main() {
	out := flag.String("out", "BENCH_sharded.json", "output JSON path")
	cycles := flag.Int64("cycles", 30000, "measured P-cycles per repetition")
	reps := flag.Int("reps", 3, "repetitions per shard count (fastest wins)")
	minSpeedup := flag.Float64("min-speedup", 0, "exit 1 unless the 4-shard speedup over 1 shard reaches this (0 disables)")
	flag.Parse()

	tor, err := topology.New(16, 2)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	var lookahead int
	run := func(shards int) shardResult {
		best := shardResult{Shards: shards}
		for r := 0; r < *reps; r++ {
			cfg := machine.DefaultConfig(tor, mapping.Identity(tor), 1)
			cfg.Workload = workload.ReadShareConfig{Graph: tor, Instances: 1, LineSize: cfg.LineSize, Compute: 20}
			cfg.Kernel = machine.KernelSharded
			cfg.Shards = shards
			// The lookahead prices only the cold fills (steady state
			// never enters the protocol) but bounds the window size:
			// stretch it so windows amortize their dispatch overhead.
			cfg.ReqLatency, cfg.DirLatency = 60, 60
			mach, err := machine.New(cfg)
			if err != nil {
				fatal(err)
			}
			lookahead = mach.Protocol().EntryLookahead()
			// Warm up past the cold fills so the fabric drains.
			if _, err := mach.Execute(ctx, machine.RunSpec{Cycles: 4000}); err != nil {
				fatal(err)
			}
			mach.ResetStats()
			base := mach.ShardWindows()
			t0 := time.Now()
			if _, err := mach.Execute(ctx, machine.RunSpec{Cycles: *cycles}); err != nil {
				fatal(err)
			}
			if rate := float64(*cycles) / time.Since(t0).Seconds(); rate > best.CyclesPerSec {
				best.CyclesPerSec = rate
				best.Windows = mach.ShardWindows() - base
			}
		}
		return best
	}

	res := result{
		Nodes: tor.Nodes(), Contexts: 1, Compute: 20,
		Cycles: *cycles, Reps: *reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		MinSpeedup: *minSpeedup,
	}
	for _, shards := range []int{1, 2, 4, 8} {
		sr := run(shards)
		sr.Speedup = 1
		if len(res.Results) > 0 {
			sr.Speedup = sr.CyclesPerSec / res.Results[0].CyclesPerSec
		}
		res.Results = append(res.Results, sr)
	}
	res.Lookahead = lookahead

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	for _, sr := range res.Results {
		fmt.Printf("shards=%d  %9.0f cycles/s  %5d windows  %.2fx\n",
			sr.Shards, sr.CyclesPerSec, sr.Windows, sr.Speedup)
	}
	fmt.Printf("GOMAXPROCS %d, NumCPU %d, lookahead %d P-cycles\n",
		res.GOMAXPROCS, res.NumCPU, res.Lookahead)
	if *minSpeedup > 0 {
		at4 := res.Results[2].Speedup
		if at4 < *minSpeedup {
			fmt.Fprintf(os.Stderr, "shardbench: 4-shard speedup %.2fx below required %.2fx\n", at4, *minSpeedup)
			os.Exit(1)
		}
	}
}
