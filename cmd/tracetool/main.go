// Command tracetool captures, inspects, replays, and fits replayable
// reference traces (.lref files, package internal/replay):
//
//	tracetool capture -o trace.lref -k 8 -n 2 -contexts 2 -mapping identity
//	tracetool info -i trace.lref
//	tracetool replay -i trace.lref
//	tracetool replay -i trace.lref -mapping random:1 -kernel tick
//	tracetool fit -i trace.lref -workers 8 -csv fit.csv
//
// capture runs the synthetic relaxation workload with a capture sink
// attached and writes the recorded reference streams; its stdout is
// the same measurement block replay prints, so
//
//	tracetool capture -o t.lref > a.txt
//	tracetool replay -i t.lref > b.txt
//	diff a.txt b.txt
//
// is the subsystem's round-trip check: a trace replayed under its
// recorded mapping reproduces the capturing run measurement for
// measurement. replay runs a trace as the machine's workload — under
// the recorded thread placement by default, or any other mapping with
// -mapping — and fit replays it across a whole mapping sweep, fits
// the application message curve Tm = s·tm − K through the sweep, and
// reports the recovered application parameters (s, c, Tr+Tc+Tf)
// alongside the combined model's predictions.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"locality/internal/experiments"
	"locality/internal/machine"
	"locality/internal/mapping"
	"locality/internal/mapsel"
	"locality/internal/replay"
	"locality/internal/report"
	"locality/internal/sim"
	"locality/internal/topology"
	"locality/internal/workload"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracetool:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool <capture|info|replay|fit> [flags]")
	fmt.Fprintln(os.Stderr, "run tracetool <verb> -h for the verb's flags")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	switch os.Args[1] {
	case "capture":
		runCapture(ctx, os.Args[2:])
	case "info":
		runInfo(os.Args[2:])
	case "replay":
		runReplay(ctx, os.Args[2:])
	case "fit":
		runFit(ctx, os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "tracetool: unknown verb %q\n", os.Args[1])
		usage()
	}
}

// printMetrics is the shared measurement block: capture and replay
// emit exactly this, so their outputs diff clean when a trace
// round-trips.
func printMetrics(met machine.Metrics) {
	fmt.Printf("window                   %d P-cycles (%d N-cycles)\n", met.PCycles, met.NCycles)
	fmt.Printf("transactions             %d\n", met.Transactions)
	fmt.Printf("fabric messages          %d\n", met.Messages)
	fmt.Printf("avg communication dist   %.2f hops\n", met.AvgDistance)
	fmt.Printf("avg message size B       %.2f flits\n", met.MsgSize)
	fmt.Printf("messages/transaction g   %.2f\n", met.MsgsPerTxn)
	fmt.Printf("inter-message time tm    %.2f N-cycles\n", met.InterMsgTime)
	fmt.Printf("message rate rm          %.5f msgs/N-cycle/node\n", met.MsgRate)
	fmt.Printf("message latency Tm       %.2f N-cycles\n", met.MsgLatency)
	fmt.Printf("transaction latency Tt   %.2f P-cycles\n", met.TxnLatency)
	fmt.Printf("inter-transaction tt     %.2f P-cycles\n", met.InterTxnTime)
	fmt.Printf("transaction rate rt      %.5f txns/P-cycle/proc\n", met.TxnRate)
	fmt.Printf("channel utilization      %.3f\n", met.ChannelUtilization)
}

func runCapture(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("tracetool capture", flag.ExitOnError)
	k := fs.Int("k", 8, "torus radix")
	n := fs.Int("n", 2, "torus dimensions")
	contexts := fs.Int("contexts", 1, "hardware contexts per processor")
	mapSel := fs.String("mapping", "identity", "thread-to-processor mapping selector")
	warmup := fs.Int64("warmup", 5000, "warmup P-cycles (excluded from measurement)")
	window := fs.Int64("window", 20000, "measurement window P-cycles")
	out := fs.String("o", "", "output trace path (required)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("capture: -o <trace.lref> is required"))
	}

	tor, err := topology.New(*k, *n)
	if err != nil {
		fatal(err)
	}
	m, err := mapsel.Parse(tor, *mapSel)
	if err != nil {
		fatal(err)
	}
	cap := replay.NewCapture()
	cfg := machine.DefaultConfig(tor, m, *contexts)
	cfg.Capture = cap
	mach, err := machine.New(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := mach.Execute(ctx, machine.RunSpec{Warmup: *warmup, Window: *window})
	if err != nil {
		fatal(err)
	}
	met := res.Metrics
	tr, err := mach.CapturedTrace(*warmup, *window)
	if err != nil {
		fatal(err)
	}
	if err := replay.WriteFile(*out, tr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracetool: captured %d records (%d threads × %d contexts) to %s\n",
		tr.Records(), tr.Header.Nodes(), tr.Header.Contexts, *out)
	printMetrics(met)
}

func runInfo(args []string) {
	fs := flag.NewFlagSet("tracetool info", flag.ExitOnError)
	in := fs.String("i", "", "input trace path (required)")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("info: -i <trace.lref> is required"))
	}
	tr, err := replay.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	hdr := tr.Header
	minLen, maxLen := -1, 0
	for _, s := range tr.Threads {
		if minLen < 0 || len(s) < minLen {
			minLen = len(s)
		}
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	fmt.Printf("machine        %d-ary %d-cube (%d nodes), %d context(s)\n", hdr.Radix, hdr.Dims, hdr.Nodes(), hdr.Contexts)
	fmt.Printf("mapping        %s\n", hdr.MappingName)
	fmt.Printf("line size      %d bytes\n", hdr.LineSize)
	fmt.Printf("protocol       %d warmup + %d window P-cycles\n", hdr.Warmup, hdr.Window)
	fmt.Printf("records        %d across %d streams (%d..%d per stream)\n", tr.Records(), len(tr.Threads), minLen, maxLen)
	fmt.Printf("home table     %d distinct lines\n", len(tr.Home))
}

func runReplay(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("tracetool replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace path (required)")
	mapSel := fs.String("mapping", "", "replay mapping selector (default: the recorded placement)")
	contexts := fs.Int("contexts", 0, "hardware contexts (0 = recorded count)")
	warmup := fs.Int64("warmup", 0, "warmup P-cycles (0 = recorded)")
	window := fs.Int64("window", 0, "measurement window P-cycles (0 = recorded)")
	kernelFlag := fs.String("kernel", "event", "execution kernel: event, tick, or sharded; results are bit-identical")
	loop := fs.Bool("loop", false, "rewind exhausted streams instead of halting")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("replay: -i <trace.lref> is required"))
	}
	tr, err := replay.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	kernel, err := sim.ParseKernel(*kernelFlag)
	if err != nil {
		fatal(err)
	}
	tor, err := topology.New(tr.Header.Radix, tr.Header.Dims)
	if err != nil {
		fatal(err)
	}
	var m *mapping.Mapping
	if *mapSel != "" {
		if m, err = mapsel.Parse(tor, *mapSel); err != nil {
			fatal(err)
		}
	} else {
		m = &mapping.Mapping{Name: tr.Header.MappingName, Place: tr.Header.Place}
	}
	p := *contexts
	if p == 0 {
		p = tr.Header.Contexts
	}
	wu, wi := *warmup, *window
	if wu <= 0 {
		wu = tr.Header.Warmup
	}
	if wi <= 0 {
		wi = tr.Header.Window
	}
	cfg := machine.DefaultConfig(tor, m, p)
	cfg.LineSize = tr.Header.LineSize
	cfg.Kernel = kernel
	wl := workload.ReplayConfig{Trace: tr, Contexts: p, Loop: *loop}
	if *mapSel != "" {
		wl.Map = m
	}
	cfg.Workload = wl
	mach, err := machine.New(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := mach.Execute(ctx, machine.RunSpec{Warmup: wu, Window: wi})
	if err != nil {
		fatal(err)
	}
	printMetrics(res.Metrics)
}

func runFit(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("tracetool fit", flag.ExitOnError)
	in := fs.String("i", "", "input trace path (required)")
	mapsFlag := fs.String("mappings", "suite", "comma-separated mapping selectors to sweep")
	contexts := fs.Int("contexts", 0, "hardware contexts (0 = recorded count)")
	warmup := fs.Int64("warmup", 0, "warmup P-cycles (0 = recorded)")
	window := fs.Int64("window", 0, "measurement window P-cycles (0 = recorded)")
	workers := fs.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "stream per-cell progress to stderr")
	csvOut := fs.String("csv", "", "also export the sweep as CSV to this path")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("fit: -i <trace.lref> is required"))
	}
	tr, err := replay.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	tor, err := topology.New(tr.Header.Radix, tr.Header.Dims)
	if err != nil {
		fatal(err)
	}
	maps, err := mapsel.List(tor, *mapsFlag)
	if err != nil {
		fatal(err)
	}
	cfg := experiments.ReplayFitConfig{
		Trace:    tr,
		Contexts: *contexts,
		Warmup:   *warmup,
		Window:   *window,
		Mappings: maps,
	}
	cfg.Workers = *workers
	if *progress {
		cfg.Progress = os.Stderr
	}
	fit, err := experiments.RunReplayFit(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	report.RenderReplayFit(os.Stdout, fit)
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteReplayFitCSV(f, fit); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}
