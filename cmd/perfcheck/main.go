// Command perfcheck is the performance regression gate. It runs a
// canonical probe simulation, appends the result to the run ledger,
// and compares it against the history of identical probes plus the
// committed BENCH_*.json baselines, exiting nonzero when something
// got slower than the noise thresholds allow:
//
//	perfcheck -ledger ledger.jsonl
//	perfcheck -ledger ledger.jsonl -max-slowdown 0.3
//	perfcheck -skip-probe -check-metrics scrape.txt -check-statusz statusz.json
//
// Checks, in order:
//
//   - Probe: a fixed 8×8 torus / 2-context machine runs a short
//     measured window; its cycles/sec must be within -max-slowdown of
//     the median of prior ledger records for the same probe on the
//     same host shape (fingerprint + GOMAXPROCS). The first run on a
//     fresh ledger establishes the baseline and passes.
//   - BENCH_telemetry.json: the committed telemetry-overhead benchmark
//     must report within_budget.
//   - BENCH_sharded.json: the recorded 4-shard speedup must meet the
//     file's own min_speedup_at_4 gate.
//   - BENCH_scale.json: each machine size's measured locality gain
//     must agree with the model's prediction within -gain-tolerance.
//   - Served-query probe: an in-process modelserver answers a fixed
//     batch of /v1/solve queries over live HTTP; the batch's p99
//     latency must not exceed the historical median by more than
//     -max-latency-growth. Skip with -skip-serve-probe.
//   - -check-metrics: a saved /metrics scrape must be well-formed
//     Prometheus text exposition (the pure-Go promtool equivalent).
//   - -check-statusz: a saved /statusz?format=json document must parse
//     and carry a health verdict.
//
// The noise thresholds are deliberately generous: perfcheck gates
// "the sharded kernel lost its speedup" and "the event kernel got 2×
// slower", not single-digit jitter between CI hosts.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"locality/internal/machine"
	"locality/internal/mapping"
	"locality/internal/obs"
	"locality/internal/serve"
	"locality/internal/telemetry"
	"locality/internal/topology"
)

// probeLabel names the canonical probe; records under other labels
// never gate against it.
const probeLabel = "probe:k8n2p2"

const probeWarmup, probeWindow = int64(1000), int64(4000)

var failures int

func failf(format string, args ...any) {
	failures++
	fmt.Printf("perfcheck: FAIL %s\n", fmt.Sprintf(format, args...))
}

func passf(format string, args ...any) {
	fmt.Printf("perfcheck: ok   %s\n", fmt.Sprintf(format, args...))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfcheck:", err)
	os.Exit(2)
}

// runProbe executes the canonical probe machine and returns its ledger
// record (not yet appended).
func runProbe() (obs.RunRecord, error) {
	tor, err := topology.New(8, 2)
	if err != nil {
		return obs.RunRecord{}, err
	}
	cfg := machine.DefaultConfig(tor, mapping.Random(tor, 1), 2)
	cfg.Telemetry = telemetry.New()
	mach, err := machine.New(cfg)
	if err != nil {
		return obs.RunRecord{}, err
	}
	rec := obs.NewRunRecord("perfcheck")
	rec.Label = probeLabel
	rec.Kernel = cfg.Kernel.String()
	rec.FillMachine(mach)
	t0 := time.Now()
	res, err := mach.Execute(context.Background(), machine.RunSpec{Warmup: probeWarmup, Window: probeWindow})
	if err != nil {
		return obs.RunRecord{}, err
	}
	rec.FillOutcome(time.Since(t0), probeWarmup+probeWindow)
	rec.Metrics = &res.Metrics
	return rec, nil
}

// servedProbeLabel names the canonical served-query batch.
const servedProbeLabel = "probe:served-solve"

// servedProbeN is the batch size: enough requests for a meaningful p99
// (rank 99% of 200 = the 198th latency) while staying well under a
// second of wall time.
const servedProbeN = 200

// runServedProbe boots an in-process modelserver, fires the canonical
// solve batch at it over real HTTP, and returns a ledger record with
// the batch's latency percentiles.
func runServedProbe() (obs.RunRecord, error) {
	s, err := serve.New(serve.Config{Addr: "127.0.0.1:0", BatchWindow: -1})
	if err != nil {
		return obs.RunRecord{}, err
	}
	defer s.Close()
	url := "http://" + s.Addr() + "/v1/solve"

	// The batch cycles 16 distinct operating points, so it measures the
	// full serving stack — JSON decode, cache (both miss and hit), JSON
	// encode — in the proportions a sweep-shaped client sees.
	bodies := make([][]byte, 16)
	for i := range bodies {
		b, err := json.Marshal(serve.SolveRequest{ConfigSpec: serve.ConfigSpec{
			Contexts: 1 + i%4, D: 1 + 0.5*float64(i),
		}})
		if err != nil {
			return obs.RunRecord{}, err
		}
		bodies[i] = b
	}
	client := &http.Client{Timeout: 10 * time.Second}
	batch := func(record bool) (p50, p99 float64, err error) {
		lat := make([]float64, 0, servedProbeN)
		for i := 0; i < servedProbeN; i++ {
			q0 := time.Now()
			resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				return 0, 0, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return 0, 0, fmt.Errorf("served probe request %d: %s", i, resp.Status)
			}
			if record {
				lat = append(lat, float64(time.Since(q0).Microseconds()))
			}
		}
		if !record {
			return 0, 0, nil
		}
		sort.Float64s(lat)
		return lat[len(lat)/2], lat[len(lat)*99/100], nil
	}

	rec := obs.NewRunRecord("perfcheck")
	rec.Label = servedProbeLabel
	t0 := time.Now()
	// Warmup pass (connection setup, cache fill, JIT-warm GC heap),
	// then best-of-reps: the minimum p99 filters scheduler and GC noise
	// the way testing.B's minimum-style reporting does. The gate is for
	// "the serving path got slower", not one preempted goroutine.
	if _, _, err := batch(false); err != nil {
		return obs.RunRecord{}, err
	}
	const reps = 3
	for r := 0; r < reps; r++ {
		p50, p99, err := batch(true)
		if err != nil {
			return obs.RunRecord{}, err
		}
		if rec.P99Micros == 0 || p99 < rec.P99Micros {
			rec.P50Micros, rec.P99Micros = p50, p99
		}
	}
	rec.WallSeconds = time.Since(t0).Seconds()
	rec.PeakHeapMB = obs.HeapMB()
	rec.Requests = servedProbeN * reps
	return rec, nil
}

// gateServedProbe compares the fresh batch's p99 against the median
// p99 of comparable history: same label and GOMAXPROCS (served latency
// is host-shaped, not machine-fingerprinted).
func gateServedProbe(history []obs.RunRecord, cur obs.RunRecord, maxGrowth float64) {
	var p99s []float64
	for _, r := range history {
		if r.Cmd == cur.Cmd && r.Label == cur.Label && r.GOMAXPROCS == cur.GOMAXPROCS &&
			r.Error == "" && r.P99Micros > 0 {
			p99s = append(p99s, r.P99Micros)
		}
	}
	if len(p99s) == 0 {
		passf("served probe p99 %.0fµs over %d queries (first comparable record, baseline established)",
			cur.P99Micros, cur.Requests)
		return
	}
	sort.Float64s(p99s)
	median := p99s[len(p99s)/2]
	ceil := median * (1 + maxGrowth)
	if cur.P99Micros > ceil {
		failf("served probe p99 %.0fµs exceeds %.0fµs (median %.0fµs of %d prior runs, -max-latency-growth %.0f%%)",
			cur.P99Micros, ceil, median, len(p99s), maxGrowth*100)
		return
	}
	passf("served probe p99 %.0fµs vs median %.0fµs (%d prior runs)", cur.P99Micros, median, len(p99s))
}

// gateProbe compares the fresh probe against the median of comparable
// historical records: same command, label, machine fingerprint, and
// GOMAXPROCS (a different host shape is a different baseline).
func gateProbe(history []obs.RunRecord, cur obs.RunRecord, maxSlowdown float64) {
	var rates []float64
	for _, r := range history {
		if r.Cmd == cur.Cmd && r.Label == cur.Label && r.Fingerprint == cur.Fingerprint &&
			r.GOMAXPROCS == cur.GOMAXPROCS && r.Error == "" && r.CyclesPerSec > 0 {
			rates = append(rates, r.CyclesPerSec)
		}
	}
	if len(rates) == 0 {
		passf("probe %.0f cycles/s (first comparable record, baseline established)", cur.CyclesPerSec)
		return
	}
	sort.Float64s(rates)
	median := rates[len(rates)/2]
	floor := median * (1 - maxSlowdown)
	if cur.CyclesPerSec < floor {
		failf("probe %.0f cycles/s is below %.0f (median %.0f of %d prior runs, -max-slowdown %.0f%%)",
			cur.CyclesPerSec, floor, median, len(rates), maxSlowdown*100)
		return
	}
	passf("probe %.0f cycles/s vs median %.0f (%d prior runs)", cur.CyclesPerSec, median, len(rates))
}

func checkTelemetryBench(path string) {
	var b struct {
		OverheadFrac float64 `json:"overhead_frac"`
		BudgetFrac   float64 `json:"budget_frac"`
		WithinBudget bool    `json:"within_budget"`
	}
	if !loadJSON(path, &b) {
		return
	}
	if !b.WithinBudget {
		failf("%s: telemetry overhead %.1f%% exceeds budget %.1f%%", filepath.Base(path), b.OverheadFrac*100, b.BudgetFrac*100)
		return
	}
	passf("%s: telemetry overhead %.1f%% within %.1f%% budget", filepath.Base(path), b.OverheadFrac*100, b.BudgetFrac*100)
}

func checkShardedBench(path string) {
	var b struct {
		Results []struct {
			Shards  int     `json:"shards"`
			Rate    float64 `json:"cycles_per_sec"`
			Speedup float64 `json:"speedup_vs_1_shard"`
		} `json:"results"`
		MinSpeedupAt4 float64 `json:"min_speedup_at_4"`
	}
	if !loadJSON(path, &b) {
		return
	}
	for _, r := range b.Results {
		if r.Rate <= 0 {
			failf("%s: %d-shard run recorded %.0f cycles/s", filepath.Base(path), r.Shards, r.Rate)
			return
		}
	}
	for _, r := range b.Results {
		if r.Shards == 4 && r.Speedup < b.MinSpeedupAt4 {
			failf("%s: 4-shard speedup %.2f below the file's own %.2f gate", filepath.Base(path), r.Speedup, b.MinSpeedupAt4)
			return
		}
	}
	passf("%s: %d shard counts, 4-shard gate %.2f met", filepath.Base(path), len(b.Results), b.MinSpeedupAt4)
}

func checkScaleBench(path string, gainTol float64) {
	var b struct {
		Results []struct {
			Radix    int     `json:"radix"`
			Nodes    int     `json:"nodes"`
			Measured float64 `json:"measured_gain"`
			Model    float64 `json:"model_gain"`
			Wall     float64 `json:"wall_seconds"`
			Heap     float64 `json:"heap_peak_mb"`
		} `json:"results"`
	}
	if !loadJSON(path, &b) {
		return
	}
	for _, r := range b.Results {
		if r.Wall <= 0 || r.Heap <= 0 {
			failf("%s: k=%d missing cost accounting (wall %.3fs, heap %.1f MB)", filepath.Base(path), r.Radix, r.Wall, r.Heap)
			return
		}
		if r.Model <= 0 {
			failf("%s: k=%d has no model prediction", filepath.Base(path), r.Radix)
			return
		}
		if rel := math.Abs(r.Measured-r.Model) / r.Model; rel > gainTol {
			failf("%s: k=%d (N=%d) measured gain %.4f vs model %.4f diverges %.1f%% (> %.0f%%)",
				filepath.Base(path), r.Radix, r.Nodes, r.Measured, r.Model, rel*100, gainTol*100)
			return
		}
	}
	passf("%s: %d sizes, measured vs model gain within %.0f%%", filepath.Base(path), len(b.Results), gainTol*100)
}

// loadJSON reads path into v; a missing file is a warning (the
// baseline was never committed), a malformed one a failure.
func loadJSON(path string, v any) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("perfcheck: skip %s (not present)\n", filepath.Base(path))
			return false
		}
		failf("%s: %v", filepath.Base(path), err)
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		failf("%s: %v", filepath.Base(path), err)
		return false
	}
	return true
}

func checkMetricsFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		failf("metrics scrape: %v", err)
		return
	}
	defer f.Close()
	if err := obs.ValidateExposition(f); err != nil {
		failf("metrics scrape %s: %v", path, err)
		return
	}
	passf("metrics scrape %s is well-formed exposition", path)
}

func checkStatuszFile(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		failf("statusz document: %v", err)
		return
	}
	var st struct {
		Health struct {
			Status string `json:"status"`
		} `json:"health"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		failf("statusz document %s: %v", path, err)
		return
	}
	if st.Health.Status == "" {
		failf("statusz document %s carries no health verdict", path)
		return
	}
	passf("statusz document %s parses, health=%s", path, st.Health.Status)
}

func main() {
	ledger := flag.String("ledger", "ledger.jsonl", "JSONL run ledger to gate against (the probe appends to it)")
	benchDir := flag.String("bench-dir", ".", "directory holding the BENCH_*.json baselines")
	maxSlowdown := flag.Float64("max-slowdown", 0.5, "allowed fractional cycles/sec drop vs the historical median")
	gainTol := flag.Float64("gain-tolerance", 0.15, "allowed relative measured-vs-model gain divergence in BENCH_scale.json")
	maxLatGrowth := flag.Float64("max-latency-growth", 1.0, "allowed fractional served-probe p99 growth vs the historical median")
	skipProbe := flag.Bool("skip-probe", false, "skip the live probe run; validate baselines and documents only")
	skipServeProbe := flag.Bool("skip-serve-probe", false, "skip the served-query latency probe")
	checkMetrics := flag.String("check-metrics", "", "validate a saved /metrics scrape file")
	checkStatusz := flag.String("check-statusz", "", "validate a saved /statusz?format=json document")
	flag.Parse()

	if !*skipProbe {
		history, err := obs.ReadLedger(*ledger)
		if err != nil {
			fatal(err)
		}
		rec, err := runProbe()
		if err != nil {
			fatal(err)
		}
		if err := obs.AppendLedger(*ledger, rec); err != nil {
			fatal(err)
		}
		gateProbe(history, rec, *maxSlowdown)
	}

	if !*skipProbe && !*skipServeProbe {
		history, err := obs.ReadLedger(*ledger)
		if err != nil {
			fatal(err)
		}
		rec, err := runServedProbe()
		if err != nil {
			fatal(err)
		}
		if err := obs.AppendLedger(*ledger, rec); err != nil {
			fatal(err)
		}
		gateServedProbe(history, rec, *maxLatGrowth)
	}

	checkTelemetryBench(filepath.Join(*benchDir, "BENCH_telemetry.json"))
	checkShardedBench(filepath.Join(*benchDir, "BENCH_sharded.json"))
	checkScaleBench(filepath.Join(*benchDir, "BENCH_scale.json"), *gainTol)
	if *checkMetrics != "" {
		checkMetricsFile(*checkMetrics)
	}
	if *checkStatusz != "" {
		checkStatuszFile(*checkStatusz)
	}

	if failures > 0 {
		fmt.Printf("perfcheck: %d check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("perfcheck: all checks passed")
}
