// Command modelserver serves the analytic combined model over
// HTTP/JSON: point queries (/v1/solve, /v1/gain, /v1/sensitivity)
// through a coalescing batcher and bounded solve cache, and grid
// queries (/v1/sweep) fanned out to registered modelworker processes —
// or run locally when none are registered. Observability rides along
// on /metrics (Prometheus), /statusz, and /healthz.
//
//	modelserver -addr :8090 -ledger runs.jsonl
//
//	curl -s localhost:8090/v1/solve -d '{"contexts":4,"d":2.5}'
//	curl -s localhost:8090/v1/gain -d '{"contexts":2,"nodes":512}'
//	curl -s localhost:8090/v1/sweep -d '{"k":4,"n":2,"contexts":[1,2],
//	    "mappings":"identity,random:1","warmup":500,"window":1000}'
//
// The process runs until SIGINT/SIGTERM, then flushes per-request-class
// latency rows to the ledger for cmd/perfcheck's served-query gates.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"locality/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	ledger := flag.String("ledger", "", "append per-class latency rows to this JSONL run ledger on shutdown")
	window := flag.Duration("batch-window", 2*time.Millisecond, "point-query micro-batch window (0 disables)")
	stale := flag.Duration("stale-after", 10*time.Second, "mark workers dead after this heartbeat silence")
	localWorkers := flag.Int("local-workers", 1, "goroutines for sweeps when no workers are registered")
	cacheCap := flag.Int("cache-capacity", 0, "solve cache entry bound (0 = default)")
	flag.Parse()

	cfg := serve.Config{
		Addr:         *addr,
		Ledger:       *ledger,
		BatchWindow:  *window,
		StaleAfter:   *stale,
		LocalWorkers: *localWorkers,
	}
	if *window == 0 {
		cfg.BatchWindow = -1 // serve.Config uses negative for "disabled"
	}
	if *cacheCap > 0 {
		cfg.CacheCapacity = *cacheCap
	}
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("modelserver listening on %s\n", s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("modelserver: shutting down")
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
