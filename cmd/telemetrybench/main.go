// Command telemetrybench measures the runtime cost of the telemetry
// layer — registry gauges, per-distance latency histograms, and kernel
// cycle attribution — on the comm-heavy workload where it is most
// exposed (nearly every cycle executes and every delivered message
// feeds a histogram), and writes the comparison as JSON.
//
//	telemetrybench -out BENCH_telemetry.json
//
// Each configuration runs the same machine for -cycles P-cycles,
// -reps times; the fastest repetition of each is compared, which
// filters scheduler noise the way testing.B's minimum-style reporting
// does. The design budget is < 5% overhead on this workload; CI runs
// this command as a smoke check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"locality/internal/machine"
	"locality/internal/mapping"
	"locality/internal/telemetry"
	"locality/internal/topology"
)

// result is the JSON report.
type result struct {
	// Workload parameters.
	Nodes    int   `json:"nodes"`
	Contexts int   `json:"contexts"`
	Compute  int   `json:"compute_cycles"`
	Cycles   int64 `json:"measured_pcycles"`
	Reps     int   `json:"reps"`
	// Best-of-reps throughput, simulated P-cycles per wall second.
	OffCyclesPerSec float64 `json:"off_cycles_per_sec"`
	OnCyclesPerSec  float64 `json:"on_cycles_per_sec"`
	// OverheadFrac is 1 - on/off: the fraction of throughput the
	// telemetry stack costs.
	OverheadFrac float64 `json:"overhead_frac"`
	Budget       float64 `json:"budget_frac"`
	WithinBudget bool    `json:"within_budget"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telemetrybench:", err)
	os.Exit(1)
}

func main() {
	out := flag.String("out", "BENCH_telemetry.json", "output JSON path")
	cycles := flag.Int64("cycles", 30000, "measured P-cycles per repetition")
	reps := flag.Int("reps", 3, "repetitions per configuration (fastest wins)")
	budget := flag.Float64("budget", 0.05, "acceptable overhead fraction; exceeding it exits 1")
	flag.Parse()

	tor, err := topology.New(8, 2)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	run := func(telem bool) float64 {
		best := 0.0
		for r := 0; r < *reps; r++ {
			cfg := machine.DefaultConfig(tor, mapping.Random(tor, 1), 2)
			cfg.ReadCompute, cfg.WriteCompute = 20, 20
			if telem {
				cfg.Telemetry = telemetry.New()
			}
			mach, err := machine.New(cfg)
			if err != nil {
				fatal(err)
			}
			if _, err := mach.Execute(ctx, machine.RunSpec{Cycles: 2000}); err != nil {
				fatal(err) // settle into steady state
			}
			mach.ResetStats()
			t0 := time.Now()
			if _, err := mach.Execute(ctx, machine.RunSpec{Cycles: *cycles}); err != nil {
				fatal(err)
			}
			if rate := float64(*cycles) / time.Since(t0).Seconds(); rate > best {
				best = rate
			}
		}
		return best
	}

	res := result{
		Nodes: tor.Nodes(), Contexts: 2, Compute: 20,
		Cycles: *cycles, Reps: *reps, Budget: *budget,
	}
	res.OffCyclesPerSec = run(false)
	res.OnCyclesPerSec = run(true)
	res.OverheadFrac = 1 - res.OnCyclesPerSec/res.OffCyclesPerSec
	res.WithinBudget = res.OverheadFrac <= *budget

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("telemetry off  %.0f cycles/s\ntelemetry on   %.0f cycles/s\noverhead       %.2f%% (budget %.0f%%)\n",
		res.OffCyclesPerSec, res.OnCyclesPerSec, 100*res.OverheadFrac, 100**budget)
	if !res.WithinBudget {
		fmt.Fprintf(os.Stderr, "telemetrybench: overhead %.2f%% exceeds budget %.0f%%\n",
			100*res.OverheadFrac, 100**budget)
		os.Exit(1)
	}
}
