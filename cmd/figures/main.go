// Command figures regenerates every table and figure in the paper's
// evaluation section:
//
//	figures -fig all            # everything (runs the full simulation suite)
//	figures -fig validation     # Figures 3–5: simulator vs model
//	figures -fig 6              # per-hop latency limit curve
//	figures -fig 7              # expected gain vs machine size
//	figures -fig 8              # issue-time decomposition
//	figures -fig table1         # network-speed sensitivity
//	figures -fig uclnucl        # UCL vs NUCL organization comparison (extension)
//	figures -fig tolerance      # prefetch vs multithreading (extension)
//	figures -fig dimensions     # mesh-dimension sweep (extension)
//	figures -fig validation -quick   # reduced windows for a fast look
//
// Output is plain text tables with the same rows/series the paper
// plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"locality/internal/core"
	"locality/internal/experiments"
	"locality/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: validation (figs 3-5), 6, 7, 8, table1, uclnucl, tolerance, dimensions, contention, gainsim, or all")
	quick := flag.Bool("quick", false, "use shorter simulation windows (validation figures only)")
	csvDir := flag.String("csv", "", "also write each figure's data as CSV into this directory")
	flag.Parse()

	writeCSV := func(name string, fn func(w *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("validation", func() error {
		cfg := experiments.DefaultValidationConfig()
		if *quick {
			cfg.Warmup = 2000
			cfg.Window = 6000
		}
		fmt.Println("== Figures 3-5: model validation against the full-system simulator")
		fmt.Printf("   (64-node 8x8 torus, %d mappings, contexts %v, window %d P-cycles)\n\n",
			9, cfg.Contexts, cfg.Window)
		v, err := experiments.RunValidation(cfg)
		if err != nil {
			return err
		}
		experiments.RenderValidation(os.Stdout, v)
		if err := writeCSV("validation.csv", func(w *os.File) error { return report.WriteValidationCSV(w, v) }); err != nil {
			return err
		}
		fmt.Println("model agreement (Figures 4-5):")
		for _, cv := range v.Curves {
			var sumRate, sumLat, maxRate, maxLat float64
			for i := range cv.Points {
				re, le := cv.RateErrors()[i], cv.LatencyErrors()[i]
				sumRate += re
				sumLat += le
				if re > maxRate {
					maxRate = re
				}
				if le > maxLat {
					maxLat = le
				}
			}
			n := float64(len(cv.Points))
			fmt.Printf("  p=%d: message rate error mean %.1f%% (max %.1f%%); latency error mean %.1f (max %.1f) N-cycles\n",
				cv.P, sumRate/n*100, maxRate*100, sumLat/n, maxLat)
		}
		fmt.Println()
		return nil
	})

	run("6", func() error {
		res, err := experiments.RunFigure6(core.LogSizes(10, 1e6, 2))
		if err != nil {
			return err
		}
		experiments.RenderFigure6(os.Stdout, res)
		return writeCSV("figure6.csv", func(w *os.File) error { return report.WriteFigure6CSV(w, res) })
	})

	run("7", func() error {
		res, err := experiments.RunFigure7(core.LogSizes(10, 1e6, 2), []int{1, 2, 4})
		if err != nil {
			return err
		}
		experiments.RenderFigure7(os.Stdout, res)
		return writeCSV("figure7.csv", func(w *os.File) error { return report.WriteFigure7CSV(w, res) })
	})

	run("8", func() error {
		cases, err := experiments.RunFigure8(1000, []int{1, 2, 4})
		if err != nil {
			return err
		}
		experiments.RenderFigure8(os.Stdout, cases)
		return writeCSV("figure8.csv", func(w *os.File) error { return report.WriteFigure8CSV(w, cases) })
	})

	run("table1", func() error {
		rows, err := experiments.RunTable1()
		if err != nil {
			return err
		}
		experiments.RenderTable1(os.Stdout, rows)
		return writeCSV("table1.csv", func(w *os.File) error { return report.WriteTable1CSV(w, rows) })
	})

	run("tolerance", func() error {
		cfg := experiments.DefaultToleranceConfig()
		if *quick {
			cfg.Warmup = 1500
			cfg.Window = 5000
		}
		rows, err := experiments.RunTolerance(cfg)
		if err != nil {
			return err
		}
		experiments.RenderTolerance(os.Stdout, rows)
		return nil
	})

	run("dimensions", func() error {
		const nodes = 4096
		rows, err := experiments.RunDimensionStudy(nodes, []int{1, 2, 3, 4, 5, 6}, 1)
		if err != nil {
			return err
		}
		experiments.RenderDimensionStudy(os.Stdout, nodes, rows)
		return nil
	})

	run("gainsim", func() error {
		cfg := experiments.DefaultGainSimConfig()
		if *quick {
			cfg.Warmup = 1500
			cfg.Window = 5000
		}
		rows, err := experiments.RunGainSim(cfg)
		if err != nil {
			return err
		}
		experiments.RenderGainSim(os.Stdout, rows)
		return nil
	})

	run("contention", func() error {
		rows, err := experiments.RunContentionShare(core.LogSizes(64, 1e6, 1), 1)
		if err != nil {
			return err
		}
		experiments.RenderContentionShare(os.Stdout, rows)
		return nil
	})

	run("uclnucl", func() error {
		rows, err := experiments.RunUCLvsNUCL(core.LogSizes(64, 1e6, 1), 1)
		if err != nil {
			return err
		}
		experiments.RenderUCLvsNUCL(os.Stdout, rows)
		return writeCSV("uclnucl.csv", func(w *os.File) error { return report.WriteUCLvsNUCLCSV(w, rows) })
	})
}
