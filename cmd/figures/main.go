// Command figures regenerates every table and figure in the paper's
// evaluation section:
//
//	figures -fig all            # everything (runs the full simulation suite)
//	figures -fig validation     # Figures 3–5: simulator vs model
//	figures -fig 6              # per-hop latency limit curve
//	figures -fig 7              # expected gain vs machine size
//	figures -fig 8              # issue-time decomposition
//	figures -fig table1         # network-speed sensitivity
//	figures -fig uclnucl        # UCL vs NUCL organization comparison (extension)
//	figures -fig tolerance      # prefetch vs multithreading (extension)
//	figures -fig dimensions     # mesh-dimension sweep (extension)
//	figures -fig validation -quick   # reduced windows for a fast look
//	figures -fig all -workers 8 -progress
//
// Output is plain text tables with the same rows/series the paper
// plots. Every study runs its grid of model solves or simulations on
// -workers goroutines through the experiment engine; results are
// assembled in grid order, so the output is identical at any worker
// count.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"locality/internal/engine"
	"locality/internal/experiments"
	"locality/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: validation (figs 3-5), 6, 7, 8, table1, uclnucl, tolerance, dimensions, contention, gainsim, or all")
	quick := flag.Bool("quick", false, "use shorter simulation windows (validation figures only)")
	csvDir := flag.String("csv", "", "also write each figure's data as CSV into this directory")
	workers := flag.Int("workers", 0, "parallel experiment workers (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "stream per-cell progress to stderr")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var prog io.Writer
	if *progress {
		prog = os.Stderr
	}
	exec := engine.Exec{Workers: *workers, Progress: prog}

	writeCSV := func(name string, fn func(w *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("validation", func() error {
		cfg := experiments.DefaultValidationConfig()
		cfg.Exec = exec
		if *quick {
			cfg.Warmup = 2000
			cfg.Window = 6000
		}
		fmt.Println("== Figures 3-5: model validation against the full-system simulator")
		fmt.Printf("   (64-node 8x8 torus, %d mappings, contexts %v, window %d P-cycles)\n\n",
			9, cfg.Contexts, cfg.Window)
		v, err := experiments.RunValidation(ctx, cfg)
		if err != nil {
			return err
		}
		report.RenderValidation(os.Stdout, v)
		if err := writeCSV("validation.csv", func(w *os.File) error { return report.WriteValidationCSV(w, v) }); err != nil {
			return err
		}
		fmt.Println("model agreement (Figures 4-5):")
		for _, cv := range v.Curves {
			var sumRate, sumLat, maxRate, maxLat float64
			for i := range cv.Points {
				re, le := cv.RateErrors()[i], cv.LatencyErrors()[i]
				sumRate += re
				sumLat += le
				if re > maxRate {
					maxRate = re
				}
				if le > maxLat {
					maxLat = le
				}
			}
			n := float64(len(cv.Points))
			fmt.Printf("  p=%d: message rate error mean %.1f%% (max %.1f%%); latency error mean %.1f (max %.1f) N-cycles\n",
				cv.P, sumRate/n*100, maxRate*100, sumLat/n, maxLat)
		}
		fmt.Println()
		return nil
	})

	run("6", func() error {
		cfg := experiments.DefaultFigure6Config()
		cfg.Exec = exec
		res, err := experiments.RunFigure6(ctx, cfg)
		if err != nil {
			return err
		}
		report.RenderFigure6(os.Stdout, res)
		return writeCSV("figure6.csv", func(w *os.File) error { return report.WriteFigure6CSV(w, res) })
	})

	run("7", func() error {
		cfg := experiments.DefaultFigure7Config()
		cfg.Exec = exec
		res, err := experiments.RunFigure7(ctx, cfg)
		if err != nil {
			return err
		}
		report.RenderFigure7(os.Stdout, res)
		return writeCSV("figure7.csv", func(w *os.File) error { return report.WriteFigure7CSV(w, res) })
	})

	run("8", func() error {
		cfg := experiments.DefaultFigure8Config()
		cfg.Exec = exec
		cases, err := experiments.RunFigure8(ctx, cfg)
		if err != nil {
			return err
		}
		report.RenderFigure8(os.Stdout, cases)
		return writeCSV("figure8.csv", func(w *os.File) error { return report.WriteFigure8CSV(w, cases) })
	})

	run("table1", func() error {
		cfg := experiments.DefaultTable1Config()
		cfg.Exec = exec
		rows, err := experiments.RunTable1(ctx, cfg)
		if err != nil {
			return err
		}
		report.RenderTable1(os.Stdout, rows)
		return writeCSV("table1.csv", func(w *os.File) error { return report.WriteTable1CSV(w, rows) })
	})

	run("tolerance", func() error {
		cfg := experiments.DefaultToleranceConfig()
		cfg.Exec = exec
		if *quick {
			cfg.Warmup = 1500
			cfg.Window = 5000
		}
		rows, err := experiments.RunTolerance(ctx, cfg)
		if err != nil {
			return err
		}
		report.RenderTolerance(os.Stdout, rows)
		return nil
	})

	run("dimensions", func() error {
		cfg := experiments.DefaultDimensionConfig()
		cfg.Exec = exec
		rows, err := experiments.RunDimensionStudy(ctx, cfg)
		if err != nil {
			return err
		}
		report.RenderDimensionStudy(os.Stdout, cfg.Nodes, rows)
		return nil
	})

	run("gainsim", func() error {
		cfg := experiments.DefaultGainSimConfig()
		cfg.Exec = exec
		if *quick {
			cfg.Warmup = 1500
			cfg.Window = 5000
		}
		rows, err := experiments.RunGainSim(ctx, cfg)
		if err != nil {
			return err
		}
		report.RenderGainSim(os.Stdout, rows)
		return nil
	})

	run("contention", func() error {
		cfg := experiments.DefaultContentionConfig()
		cfg.Exec = exec
		rows, err := experiments.RunContentionShare(ctx, cfg)
		if err != nil {
			return err
		}
		report.RenderContentionShare(os.Stdout, rows)
		return nil
	})

	run("uclnucl", func() error {
		cfg := experiments.DefaultUCLvsNUCLConfig()
		cfg.Exec = exec
		rows, err := experiments.RunUCLvsNUCL(ctx, cfg)
		if err != nil {
			return err
		}
		report.RenderUCLvsNUCL(os.Stdout, rows)
		return writeCSV("uclnucl.csv", func(w *os.File) error { return report.WriteUCLvsNUCLCSV(w, rows) })
	})
}
