// Command modelworker executes sweep chunks on behalf of a
// modelserver. It registers itself, heartbeats, and serves POST /run
// requests that carry a sweep grid spec plus a cell range; the server
// handles scheduling, requeue on death, and in-order result streaming.
//
//	modelworker -server http://localhost:8090 -id worker-1
//
// Workers are stateless: killing one mid-sweep loses nothing (the
// server requeues its outstanding chunk) and restarting one just
// re-registers. Run as many as the host has cores to spare.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"locality/internal/serve"
)

func main() {
	server := flag.String("server", "http://localhost:8090", "modelserver base URL")
	id := flag.String("id", "", "worker ID (default worker-<pid>)")
	addr := flag.String("addr", "127.0.0.1:0", "listen address for /run")
	advertise := flag.String("advertise-host", "", "host to advertise to the server (default 127.0.0.1)")
	beat := flag.Duration("heartbeat", 2*time.Second, "heartbeat period")
	flag.Parse()

	wid := *id
	if wid == "" {
		wid = fmt.Sprintf("worker-%d", os.Getpid())
	}
	w := serve.NewWorker(wid, *server)
	w.HeartbeatEvery = *beat
	if err := w.Start(*addr, *advertise); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("modelworker %s serving on %s for %s\n", wid, w.Addr(), *server)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("modelworker: shutting down")
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
