// Fabrics: run the same application model over three interconnect
// organizations using the Fabric interface — a torus exploiting
// physical locality, a torus ignoring it, and a multistage (UCL)
// network where locality cannot help — and watch why scalable machines
// expose non-uniform latency. Also demonstrates the distance-mixture
// refinement of the paper's single-number d.
//
//	go run ./examples/fabrics
package main

import (
	"fmt"
	"log"

	"locality/internal/core"
	"locality/internal/mapping"
	"locality/internal/topology"
)

func main() {
	// One application, expressed as its fitted message curve.
	cfg := core.AlewifeLargeScale(1, 1)
	node := cfg.Node()
	curve := core.NodeCurve{S: node.Sensitivity(), K: node.Intercept()}
	torus := cfg.Net

	fmt.Println("Application message curve: Tm =", curve.S, "· tm −", curve.K)
	fmt.Println()
	fmt.Println("        N   torus+ideal   torus+random   indirect(UCL)   (message latency, N-cycles)")
	for _, n := range []float64{64, 1024, 16384, 262144, 1048576} {
		_, tmIdeal, err := core.SolveOnFabric(curve, torus, 1)
		if err != nil {
			log.Fatal(err)
		}
		_, tmRandom, err := core.SolveOnFabric(curve, torus, core.RandomMappingDistance(2, n))
		if err != nil {
			log.Fatal(err)
		}
		_, tmUCL, err := core.SolveOnFabric(curve, core.IndirectFor(n, 2, torus.MsgSize), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0f   %11.1f   %12.1f   %13.1f\n", n, tmIdeal, tmRandom, tmUCL)
	}

	// Distance mixtures: the paper compresses a mapping's communication
	// pattern to its mean distance; the mixture fabric keeps the whole
	// histogram. Compare both against each other for a real mapping.
	fmt.Println("\nMean-distance vs exact-histogram predictions (64-node torus):")
	tor := topology.MustNew(8, 2)
	for _, m := range []*mapping.Mapping{mapping.RowShuffle(tor, 1), mapping.Random(tor, 1)} {
		d := m.AvgDistance(tor)
		mix, err := core.NeighborDistanceMix(m.DistanceHistogram(tor))
		if err != nil {
			log.Fatal(err)
		}
		_, tmMean, err := core.SolveOnFabric(curve, torus, d)
		if err != nil {
			log.Fatal(err)
		}
		_, tmMix, err := core.SolveOnFabric(curve, core.MixedDistanceNetwork{Net: torus, Mix: mix}, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s d=%.2f   Tm(mean)=%.1f   Tm(histogram)=%.1f\n", m.Name, d, tmMean, tmMix)
	}
	fmt.Println("\nThe mean-distance compression loses little for torus mappings —")
	fmt.Println("the paper's single-parameter d is a good operational definition.")
}
