// Scaling study: use the combined model to project locality gains and
// per-hop latency from ten processors to a million — Figures 6 and 7
// of the paper as one runnable program.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"locality/internal/core"
)

func main() {
	sizes := core.LogSizes(10, 1e6, 1)

	fmt.Println("Per-hop latency under random mappings (2 contexts):")
	cfg := core.AlewifeLargeScale(2, 1)
	limit := core.HopLatencyLimit(cfg)
	fmt.Printf("  asymptotic limit Th∞ = B·s/2n = %.2f N-cycles\n\n", limit)
	fmt.Println("        N     d(random)      Th    fraction of limit")
	for _, n := range sizes {
		d := core.RandomMappingDistance(2, n)
		th, err := core.HopLatencyAtDistance(cfg, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0f   %9.1f   %6.2f   %6.0f%%\n", n, d, th, th/limit*100)
	}

	fmt.Println("\nExpected gain from exploiting physical locality:")
	fmt.Println("        N     p=1     p=2     p=4")
	for _, n := range sizes {
		fmt.Printf("%9.0f", n)
		for _, p := range []int{1, 2, 4} {
			g := core.AlewifeLargeScale(p, 1)
			g.AssumeUnmasked = false
			res, err := core.ExpectedGain(g, n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6.2f", res.Gain)
		}
		fmt.Println()
	}
	fmt.Println("\nBecause per-hop latency saturates, the gain is bounded by the")
	fmt.Println("distance-reduction factor: ~2x at a thousand processors, tens at a million.")
}
