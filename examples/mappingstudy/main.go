// Mapping study: run the full-system simulator (processors, coherence
// protocol, wormhole network) on a 64-node machine under several
// thread-to-processor mappings and watch performance degrade as
// average communication distance grows — the simulation half of the
// paper's validation study, in miniature.
//
//	go run ./examples/mappingstudy
package main

import (
	"context"
	"fmt"
	"log"

	"locality/internal/machine"
	"locality/internal/mapping"
	"locality/internal/topology"
)

func main() {
	tor := topology.MustNew(8, 2)
	maps := []*mapping.Mapping{
		mapping.Identity(tor), // ideal: the app's torus graph matches the machine
		mapping.DiagonalShift(tor, 2),
		mapping.BitReverse(tor),
		mapping.Random(tor, 1),           // locality ignored
		mapping.Optimize(tor, 2, +1, 40), // adversarial anti-locality
	}

	fmt.Println("64-node 8x8 torus, 2 hardware contexts, synthetic relaxation app")
	fmt.Println()
	fmt.Println("mapping            d (hops)   Tm (N-cyc)   tt (P-cyc)   slowdown")
	var baseline float64
	for _, m := range maps {
		mach, err := machine.New(machine.DefaultConfig(tor, m, 2))
		if err != nil {
			log.Fatal(err)
		}
		res, err := mach.Execute(context.Background(), machine.RunSpec{Warmup: 4000, Window: 12000})
		if err != nil {
			log.Fatal(err)
		}
		met := res.Metrics
		if baseline == 0 {
			baseline = met.InterTxnTime
		}
		fmt.Printf("%-18s %8.2f   %10.1f   %10.1f   %7.2fx\n",
			m.Name, m.AvgDistance(tor), met.MsgLatency, met.InterTxnTime, met.InterTxnTime/baseline)
	}
	fmt.Println()
	fmt.Println("Every extra hop of average distance costs throughput: communication")
	fmt.Println("latency is (as the paper proves) linear in communication distance.")
}
