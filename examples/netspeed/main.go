// Network-speed study: reproduce Table 1's sensitivity analysis — how
// the value of exploiting locality rises as the network slows relative
// to the processors — and extend it with a simulation cross-check on a
// 64-node machine.
//
//	go run ./examples/netspeed
package main

import (
	"context"
	"fmt"
	"log"

	"locality/internal/core"
	"locality/internal/machine"
	"locality/internal/mapping"
	"locality/internal/topology"
)

func main() {
	fmt.Println("Model (Table 1): expected locality gains, one context")
	fmt.Println("network speed    gain @ 10^3    gain @ 10^6")
	for _, row := range []struct {
		label  string
		factor float64
	}{
		{"2x faster (base)", 1},
		{"same", 0.5},
		{"2x slower", 0.25},
		{"4x slower", 0.125},
	} {
		cfg := core.AlewifeLargeScale(1, 1).WithNetworkSpeed(row.factor)
		g3, err := core.ExpectedGain(cfg, 1000)
		if err != nil {
			log.Fatal(err)
		}
		g6, err := core.ExpectedGain(cfg, 1e6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10.1f %14.1f\n", row.label, g3.Gain, g6.Gain)
	}

	// Simulation cross-check at 64 nodes: a slower network amplifies
	// the ideal-vs-random performance ratio there too.
	fmt.Println("\nSimulation cross-check (64 nodes, 1 context):")
	fmt.Println("clock ratio    tt ideal    tt random    ratio")
	tor := topology.MustNew(8, 2)
	for _, ratio := range []int{2, 1} {
		var tts [2]float64
		for i, m := range []*mapping.Mapping{mapping.Identity(tor), mapping.Random(tor, 1)} {
			cfg := machine.DefaultConfig(tor, m, 1)
			cfg.ClockRatio = ratio
			mach, err := machine.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := mach.Execute(context.Background(), machine.RunSpec{Warmup: 4000, Window: 12000})
			if err != nil {
				log.Fatal(err)
			}
			tts[i] = res.InterTxnTime
		}
		fmt.Printf("%6dx %13.1f %11.1f %9.2fx\n", ratio, tts[0], tts[1], tts[1]/tts[0])
	}
	fmt.Println("\nThe richer the network relative to computation, the less locality")
	fmt.Println("matters; starve the network and placement becomes critical.")
}
