// Quickstart: build a combined-model configuration for an
// Alewife-class machine, solve it at two communication distances, and
// see how much exploiting physical locality is worth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"locality/internal/core"
)

func main() {
	// The paper's reference architecture with two hardware contexts:
	// Tr = 24 P-cycles of work per transaction, 11-cycle context
	// switches, coherence transactions averaging g = 3.2 messages of
	// B = 12 flits, and a 2-D torus clocked twice as fast as the
	// processors.
	cfg := core.Alewife(2, 1)

	fmt.Printf("latency sensitivity s = %.2f, hop-latency limit Th∞ = %.2f N-cycles\n\n",
		cfg.Node().Sensitivity(), core.HopLatencyLimit(cfg))

	// Solve the combined model at increasing communication distances.
	// Feedback between the application and the network means the
	// injection rate falls as latency rises — neither is an input.
	fmt.Println("d (hops)   rm (msgs/N-cyc)   Tm (N-cyc)   tt (P-cyc)   utilization")
	for _, d := range []float64{1, 2, 4, 8, 16, 32} {
		sol, err := cfg.WithDistance(d).Solve()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.0f    %12.5f   %10.1f   %10.1f   %11.3f\n",
			d, sol.MsgRate, sol.MsgLatency, sol.IssueTime, sol.Utilization)
	}

	// The headline question: how much is a perfect (single-hop)
	// mapping worth over a random one on a 1,000-processor machine?
	gain, err := core.ExpectedGain(cfg, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOn a 1,000-processor machine a random mapping averages %.1f hops;\n", gain.RandomDistance)
	fmt.Printf("exploiting locality down to 1 hop buys %.2fx performance — the\n", gain.Gain)
	fmt.Println("paper's 'about a factor of two' upper bound.")
}
